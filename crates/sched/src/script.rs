//! PBS job scripts, including the Figure-4 OS-switch job.
//!
//! The middleware's whole trick is that OS switching travels *through the
//! batch system*: "The system switching action is packed as a PBS or
//! Windows HPC job script, which locates a single node, modifies GRUB's
//! configure file, and reboots the machine. The advantage of sending
//! switch orders through job scheduler is that job scheduler can
//! automatically locate free nodes, and all the running jobs can be
//! protected from other accidental operations" (§III.B.2).
//!
//! This module models the script text: `#PBS` directives, command lines,
//! and the specific switch-job body of Figure 4 (with its deliberate
//! `sleep 10` so the reboot doesn't outrun the job).

use crate::job::JobRequest;
use dualboot_bootconf::error::ParseError;
use dualboot_bootconf::os::OsKind;
use dualboot_des::time::SimDuration;
use serde::{Deserialize, Serialize};

const DIALECT: &str = "pbs-script";

/// The `#PBS` directives a script carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PbsDirectives {
    /// `-l nodes=N:ppn=M`
    pub nodes: u32,
    /// `ppn` part of the resource list.
    pub ppn: u32,
    /// `-N` job name.
    pub name: String,
    /// `-q` destination queue.
    pub queue: String,
    /// `-j oe` — join stdout/stderr (carried for fidelity).
    pub join_oe: bool,
    /// `-o` output path.
    pub output: Option<String>,
    /// `-r n` — job is *not* rerunnable (essential for a reboot job:
    /// rerunning a switch after the reboot would bounce the node again).
    pub rerunnable: bool,
    /// `-l walltime=HH:MM:SS` limit, when requested.
    pub walltime: Option<SimDuration>,
}

/// A PBS shell script: directives plus executable command lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PbsScript {
    /// Parsed `#PBS` directives.
    pub directives: PbsDirectives,
    /// Command lines in order (comments preserved inline).
    pub commands: Vec<String>,
}

impl PbsScript {
    /// Parse a job script: collect `#PBS` lines wherever they appear and
    /// every non-comment, non-shebang line as a command.
    pub fn parse(text: &str) -> Result<PbsScript, ParseError> {
        let mut nodes = 1u32;
        let mut ppn = 1u32;
        let mut name = String::new();
        let mut queue = "default".to_string();
        let mut join_oe = false;
        let mut output = None;
        let mut rerunnable = true;
        let mut walltime = None;
        let mut commands = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("#PBS") {
                let words: Vec<&str> = rest.split_whitespace().collect();
                let mut k = 0;
                while k < words.len() {
                    match words[k] {
                        "-l" => {
                            let spec = words.get(k + 1).ok_or_else(|| {
                                ParseError::at(DIALECT, lineno, "-l needs a value")
                            })?;
                            for item in spec.split(',') {
                                if let Some(v) = item.strip_prefix("walltime=") {
                                    walltime = Some(parse_walltime(v).ok_or_else(|| {
                                        ParseError::at(DIALECT, lineno, "bad walltime=")
                                    })?);
                                    continue;
                                }
                                if let Some(v) = item.strip_prefix("nodes=") {
                                    let (n, p) = match v.split_once(":ppn=") {
                                        Some((n, p)) => (n, p),
                                        None => (v, "1"),
                                    };
                                    nodes = n.parse().map_err(|_| {
                                        ParseError::at(DIALECT, lineno, "bad nodes=")
                                    })?;
                                    ppn = p.parse().map_err(|_| {
                                        ParseError::at(DIALECT, lineno, "bad ppn=")
                                    })?;
                                }
                            }
                            k += 2;
                        }
                        "-N" => {
                            name = words
                                .get(k + 1)
                                .ok_or_else(|| {
                                    ParseError::at(DIALECT, lineno, "-N needs a value")
                                })?
                                .to_string();
                            k += 2;
                        }
                        "-q" => {
                            queue = words
                                .get(k + 1)
                                .ok_or_else(|| {
                                    ParseError::at(DIALECT, lineno, "-q needs a value")
                                })?
                                .to_string();
                            k += 2;
                        }
                        "-j" => {
                            join_oe = words.get(k + 1) == Some(&"oe");
                            k += 2;
                        }
                        "-o" => {
                            output = words.get(k + 1).map(|s| s.to_string());
                            k += 2;
                        }
                        "-r" => {
                            rerunnable = words.get(k + 1) != Some(&"n");
                            k += 2;
                        }
                        other => {
                            return Err(ParseError::at(
                                DIALECT,
                                lineno,
                                format!("unknown #PBS option {other:?}"),
                            ))
                        }
                    }
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue; // comments, banners, shebang (starts with #!)
            }
            commands.push(line.to_string());
        }
        Ok(PbsScript {
            directives: PbsDirectives {
                nodes,
                ppn,
                name,
                queue,
                join_oe,
                output,
                rerunnable,
                walltime,
            },
            commands,
        })
    }

    /// Emit the script in the Figure-4 layout: banner, user-parameter
    /// section with the directives, executing-commands section.
    pub fn emit(&self) -> String {
        let d = &self.directives;
        let mut out = String::new();
        out.push_str("#####################################\n");
        out.push_str("###      Job Submission Script    ###\n");
        out.push_str("#   Change items in section 1       #\n");
        out.push_str("#   to suit your job needs          #\n");
        out.push_str("#####################################\n");
        out.push_str("#   Section 1: User Parameters      #\n");
        out.push_str("#####################################\n");
        out.push_str("#\n");
        out.push_str("#!/bin/bash\n");
        out.push_str(&format!("#PBS -l nodes={}:ppn={}\n", d.nodes, d.ppn));
        if let Some(w) = d.walltime {
            out.push_str(&format!("#PBS -l walltime={}\n", format_walltime(w)));
        }
        out.push_str(&format!("#PBS -N {}\n", d.name));
        out.push_str(&format!("#PBS -q {}\n", d.queue));
        if d.join_oe {
            out.push_str("#PBS -j oe\n");
        }
        if let Some(o) = &d.output {
            out.push_str(&format!("#PBS -o {o}\n"));
        }
        if !d.rerunnable {
            out.push_str("#PBS -r n\n");
        }
        out.push_str("#\n");
        out.push_str("#####################################\n");
        out.push_str("#   Section 3: Executing Commands   #\n");
        out.push_str("#####################################\n");
        for c in &self.commands {
            out.push_str(c);
            out.push('\n');
        }
        out
    }

    /// The Figure-4 OS-switch job script, parameterised by target OS: one
    /// full node (`nodes=1:ppn=4`), logs its job id, rewrites
    /// `controlmenu.lst` via `bootcontrol.pl`, reboots, sleeps 10 s.
    pub fn switch_job(target: OsKind) -> PbsScript {
        PbsScript {
            directives: PbsDirectives {
                nodes: 1,
                ppn: 4,
                name: "release_1_node".to_string(),
                queue: "default".to_string(),
                join_oe: true,
                output: Some("reboot_log.out".to_string()),
                rerunnable: false,
                walltime: None,
            },
            commands: vec![
                "echo $PBS_JOBID >>/home/sliang/reboot_log/rebootjob.log #write logs"
                    .to_string(),
                format!(
                    "sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst {} \
#changes default boot OS",
                    target.tag()
                ),
                "sudo reboot #reboot node".to_string(),
                "sleep 10 #leave 10 seconds to avoid job be finished before reboot"
                    .to_string(),
            ],
        }
    }

    /// If this is an OS-switch script, the OS it switches to (found as the
    /// last argument of the `bootcontrol.pl` invocation).
    pub fn switch_target(&self) -> Option<OsKind> {
        for c in &self.commands {
            if c.contains("bootcontrol.pl") {
                let before_comment = c.split('#').next().unwrap_or("");
                return before_comment
                    .split_whitespace()
                    .last()
                    .and_then(|w| w.parse().ok());
            }
        }
        None
    }

    /// Does the script reboot its node?
    pub fn reboots(&self) -> bool {
        self.commands
            .iter()
            .any(|c| c.split('#').next().unwrap_or("").contains("reboot"))
    }

    /// Convert to a scheduler [`JobRequest`] for submission. `runtime` is
    /// the dwell before the node drops (the `sleep 10` plus overheads).
    pub fn to_request(&self, os: OsKind, runtime: SimDuration) -> JobRequest {
        let kind = match self.switch_target() {
            Some(target) => crate::job::JobKind::OsSwitch { target },
            None => crate::job::JobKind::User,
        };
        JobRequest {
            name: self.directives.name.clone(),
            owner: "sliang".to_string(),
            os,
            nodes: self.directives.nodes,
            ppn: self.directives.ppn,
            runtime,
            walltime: self.directives.walltime,
            kind,
        }
    }
}

/// Parse `HH:MM:SS` (or `MM:SS`, or bare seconds) into a duration.
pub fn parse_walltime(s: &str) -> Option<SimDuration> {
    let parts: Vec<&str> = s.split(':').collect();
    let nums: Option<Vec<u64>> = parts.iter().map(|p| p.parse().ok()).collect();
    let nums = nums?;
    let secs = match nums.as_slice() {
        [h, m, sec] => h * 3600 + m * 60 + sec,
        [m, sec] => m * 60 + sec,
        [sec] => *sec,
        _ => return None,
    };
    Some(SimDuration::from_secs(secs))
}

/// Format a duration as PBS `HH:MM:SS`.
pub fn format_walltime(d: SimDuration) -> String {
    let s = d.as_secs();
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    /// Figure 4's switch job, in this crate's canonical layout (the paper's
    /// PDF listing wraps long lines; content is identical).
    const FIG4: &str = "#####################################\n\
###      Job Submission Script    ###\n\
#   Change items in section 1       #\n\
#   to suit your job needs          #\n\
#####################################\n\
#   Section 1: User Parameters      #\n\
#####################################\n\
#\n\
#!/bin/bash\n\
#PBS -l nodes=1:ppn=4\n\
#PBS -N release_1_node\n\
#PBS -q default\n\
#PBS -j oe\n\
#PBS -o reboot_log.out\n\
#PBS -r n\n\
#\n\
#####################################\n\
#   Section 3: Executing Commands   #\n\
#####################################\n\
echo $PBS_JOBID >>/home/sliang/reboot_log/rebootjob.log #write logs\n\
sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst windows #changes default boot OS\n\
sudo reboot #reboot node\n\
sleep 10 #leave 10 seconds to avoid job be finished before reboot\n";

    #[test]
    fn fig4_emits_verbatim() {
        assert_eq!(PbsScript::switch_job(OsKind::Windows).emit(), FIG4);
    }

    #[test]
    fn fig4_roundtrips() {
        let s = PbsScript::parse(FIG4).unwrap();
        assert_eq!(s, PbsScript::switch_job(OsKind::Windows));
        assert_eq!(s.emit(), FIG4);
    }

    #[test]
    fn directives_parsed() {
        let s = PbsScript::parse(FIG4).unwrap();
        let d = &s.directives;
        assert_eq!((d.nodes, d.ppn), (1, 4));
        assert_eq!(d.name, "release_1_node");
        assert_eq!(d.queue, "default");
        assert!(d.join_oe);
        assert_eq!(d.output.as_deref(), Some("reboot_log.out"));
        assert!(!d.rerunnable);
    }

    #[test]
    fn switch_target_detected() {
        assert_eq!(
            PbsScript::switch_job(OsKind::Windows).switch_target(),
            Some(OsKind::Windows)
        );
        assert_eq!(
            PbsScript::switch_job(OsKind::Linux).switch_target(),
            Some(OsKind::Linux)
        );
    }

    #[test]
    fn reboot_detected_ignoring_comments() {
        let s = PbsScript::switch_job(OsKind::Linux);
        assert!(s.reboots());
        let mut user = s.clone();
        user.commands = vec!["echo hello #do not reboot".to_string()];
        assert!(!user.reboots());
    }

    #[test]
    fn user_script_is_not_a_switch() {
        let text = "#!/bin/bash\n#PBS -l nodes=2:ppn=4\n#PBS -N dlpoly\n./DLPOLY.X\n";
        let s = PbsScript::parse(text).unwrap();
        assert_eq!(s.switch_target(), None);
        assert!(!s.reboots());
        assert_eq!((s.directives.nodes, s.directives.ppn), (2, 4));
        let req = s.to_request(OsKind::Linux, SimDuration::from_mins(30));
        assert_eq!(req.kind, JobKind::User);
        assert_eq!(req.cpus(), 8);
    }

    #[test]
    fn to_request_marks_switch_jobs() {
        let req = PbsScript::switch_job(OsKind::Windows)
            .to_request(OsKind::Linux, SimDuration::from_secs(10));
        assert_eq!(
            req.kind,
            JobKind::OsSwitch {
                target: OsKind::Windows
            }
        );
        assert_eq!(req.name, "release_1_node");
    }

    #[test]
    fn walltime_parses_and_emits() {
        let text = "#PBS -l nodes=2:ppn=4,walltime=01:30:00\n#PBS -N dlpoly\n./run\n";
        let s = PbsScript::parse(text).unwrap();
        assert_eq!(
            s.directives.walltime,
            Some(SimDuration::from_secs(5400))
        );
        let emitted = s.emit();
        assert!(emitted.contains("#PBS -l walltime=01:30:00\n"));
        let back = PbsScript::parse(&emitted).unwrap();
        assert_eq!(back.directives.walltime, s.directives.walltime);
        let req = s.to_request(OsKind::Linux, SimDuration::from_hours(2));
        assert!(req.overruns_walltime());
    }

    #[test]
    fn walltime_formats() {
        assert_eq!(parse_walltime("01:30:00"), Some(SimDuration::from_secs(5400)));
        assert_eq!(parse_walltime("45:30"), Some(SimDuration::from_secs(2730)));
        assert_eq!(parse_walltime("90"), Some(SimDuration::from_secs(90)));
        assert_eq!(parse_walltime("1:2:3:4"), None);
        assert_eq!(parse_walltime("abc"), None);
        assert_eq!(format_walltime(SimDuration::from_secs(5400)), "01:30:00");
    }

    #[test]
    fn bare_nodes_without_ppn() {
        let s = PbsScript::parse("#PBS -l nodes=3\n").unwrap();
        assert_eq!((s.directives.nodes, s.directives.ppn), (3, 1));
    }

    #[test]
    fn unknown_option_rejected_with_line() {
        let err = PbsScript::parse("#!/bin/bash\n#PBS -Z whatever\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rerunnable_default_true() {
        let s = PbsScript::parse("#PBS -N x\n").unwrap();
        assert!(s.directives.rerunnable);
    }
}
