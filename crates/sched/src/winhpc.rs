//! The Windows-HPC-like scheduler of the Windows head node.
//!
//! Windows HPC Server 2008 R2 schedules by *cores* rather than whole
//! nodes, and — unlike PBS — "Microsoft provides a SDK for programs to
//! fetch the data and send the tasks, e.g. get the queue state and nodes
//! state" (§III.B.3). The reproduction mirrors both: allocation is
//! core-granular (a job asking `nodes × ppn` cores may be packed across
//! any online nodes), and the typed [`HpcApi`] facade stands in for the
//! SDK the paper's Windows detector links against (no text scraping on
//! this side).
//!
//! Dispatch remains strict FCFS with no backfill, like the Linux side: the
//! paper's daemons treat both queues uniformly.

use crate::job::{Job, JobId, JobRequest, JobState};
use crate::scheduler::{Dispatch, QueueSnapshot, Scheduler};
use dualboot_bootconf::os::OsKind;
use dualboot_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct NodeSlot {
    cores: u32,
    used: u32,
    online: bool,
    jobs: Vec<JobId>,
}

/// The Windows HPC head-node scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WinHpcScheduler {
    head: String,
    nodes: BTreeMap<String, NodeSlot>,
    jobs: BTreeMap<u64, Job>,
    /// Exact `(host, cores)` allocation of each running job, kept so that
    /// completion releases precisely what dispatch took.
    allocs: BTreeMap<u64, Vec<(String, u32)>>,
    queue: VecDeque<JobId>,
    next_id: u64,
}

impl WinHpcScheduler {
    /// A fresh scheduler with the given head-node name.
    pub fn new(head: impl Into<String>) -> Self {
        WinHpcScheduler {
            head: head.into(),
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            allocs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: 1,
        }
    }

    /// The paper's Windows head node on Eridani.
    pub fn eridani() -> Self {
        WinHpcScheduler::new("winhead.eridani.qgg.hud.ac.uk")
    }

    /// Head-node name.
    pub fn head(&self) -> &str {
        &self.head
    }

    /// Text id (`JOB-17@winhead...`) used in detector output.
    pub fn full_id(&self, id: JobId) -> String {
        format!("JOB-{}@{}", id.0, self.head)
    }

    /// Greedy core packing for a request. Returns `(host, cores)` pairs if
    /// the request fits, hosts in lexicographic order.
    fn place(&self, cpus_needed: u32) -> Option<Vec<(String, u32)>> {
        let mut remaining = cpus_needed;
        let mut picks = Vec::new();
        for (name, slot) in &self.nodes {
            if !slot.online {
                continue;
            }
            let free = slot.cores.saturating_sub(slot.used);
            if free == 0 {
                continue;
            }
            let take = free.min(remaining);
            picks.push((name.clone(), take));
            remaining -= take;
            if remaining == 0 {
                return Some(picks);
            }
        }
        None
    }

    /// Node states for diagnostics: `(name, cores, used, online)`.
    pub fn node_states(&self) -> impl Iterator<Item = (&str, u32, u32, bool)> {
        self.nodes
            .iter()
            .map(|(n, s)| (n.as_str(), s.cores, s.used, s.online))
    }

    /// Jobs holding cores on a given node.
    pub fn jobs_on(&self, hostname: &str) -> Vec<JobId> {
        self.nodes
            .get(hostname)
            .map(|s| s.jobs.clone())
            .unwrap_or_default()
    }

    /// The SDK facade (paper: "Microsoft provides a SDK ... to fetch the
    /// data and send the tasks").
    pub fn api(&self) -> HpcApi<'_> {
        HpcApi { sched: self }
    }
}

impl Scheduler for WinHpcScheduler {
    fn os(&self) -> OsKind {
        OsKind::Windows
    }

    fn register_node(&mut self, hostname: &str, cores: u32) {
        let slot = self.nodes.entry(hostname.to_string()).or_insert(NodeSlot {
            cores,
            used: 0,
            online: false,
            jobs: Vec::new(),
        });
        slot.cores = cores;
        slot.online = true;
    }

    fn set_node_offline(&mut self, hostname: &str) {
        if let Some(slot) = self.nodes.get_mut(hostname) {
            slot.online = false;
        }
    }

    fn is_node_online(&self, hostname: &str) -> bool {
        self.nodes.get(hostname).map(|s| s.online).unwrap_or(false)
    }

    fn submit(&mut self, req: JobRequest, now: SimTime) -> JobId {
        debug_assert_eq!(req.os, OsKind::Windows, "Linux job submitted to WinHPC");
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id.0,
            Job {
                id,
                req,
                state: JobState::Queued,
                submitted_at: now,
                started_at: None,
                finished_at: None,
                exec_hosts: Vec::new(),
            },
        );
        self.queue.push_back(id);
        id
    }

    fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id.0) else {
            return false;
        };
        if job.state != JobState::Queued {
            return false;
        }
        job.state = JobState::Cancelled;
        self.queue.retain(|q| *q != id);
        true
    }

    fn try_dispatch(&mut self, now: SimTime) -> Vec<Dispatch> {
        let mut started = Vec::new();
        while let Some(&head) = self.queue.front() {
            let req = self.jobs[&head.0].req.clone();
            // Switch jobs must own a whole free node (they reboot it);
            // ordinary jobs pack by cores.
            let placement = if req.kind == crate::job::JobKind::User {
                self.place(req.cpus())
            } else {
                self.nodes
                    .iter()
                    .find(|(_, s)| s.online && s.used == 0 && s.cores >= req.cpus())
                    .map(|(n, s)| vec![(n.clone(), s.cores)])
            };
            let Some(picks) = placement else {
                break;
            };
            self.queue.pop_front();
            let mut hosts = Vec::new();
            for (h, cores) in &picks {
                let slot = self.nodes.get_mut(h).expect("placed host exists");
                slot.used += cores;
                slot.jobs.push(head);
                hosts.push(h.clone());
            }
            let job = self.jobs.get_mut(&head.0).expect("queued job exists");
            job.state = JobState::Running;
            job.started_at = Some(now);
            job.exec_hosts = hosts.clone();
            self.allocs.insert(head.0, picks);
            started.push(Dispatch { job: head, hosts });
        }
        started
    }

    fn complete(&mut self, id: JobId, now: SimTime) -> Option<Job> {
        let job = self.jobs.get_mut(&id.0)?;
        if job.state != JobState::Running {
            return None;
        }
        job.state = JobState::Completed;
        job.finished_at = Some(now);
        let done = job.clone();
        // Release exactly what dispatch allocated.
        if let Some(picks) = self.allocs.remove(&id.0) {
            for (h, cores) in picks {
                if let Some(slot) = self.nodes.get_mut(&h) {
                    slot.used = slot.used.saturating_sub(cores);
                    slot.jobs.retain(|j| *j != id);
                }
            }
        }
        Some(done)
    }

    fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id.0)
    }

    fn snapshot(&self) -> QueueSnapshot {
        let running = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count() as u32;
        let queued = self.queue.len() as u32;
        let first = self.queue.front().map(|id| &self.jobs[&id.0]);
        let online: Vec<&NodeSlot> = self.nodes.values().filter(|s| s.online).collect();
        QueueSnapshot {
            os: OsKind::Windows,
            running,
            queued,
            first_queued_cpus: first.map(|j| j.req.cpus()),
            first_queued_id: first.map(|j| self.full_id(j.id)),
            nodes_online: online.len() as u32,
            nodes_free: online.iter().filter(|s| s.used == 0).count() as u32,
            cores_online: online.iter().map(|s| s.cores).sum(),
            cores_free: online.iter().map(|s| s.cores - s.used).sum(),
        }
    }

    fn jobs(&self) -> Vec<&Job> {
        self.jobs.values().collect()
    }

    fn free_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, s)| s.online && s.used == 0)
            .map(|(n, _)| n.clone())
            .collect()
    }
}

/// The typed SDK facade — the interface the paper's Windows-side detector
/// programs use instead of scraping text.
#[derive(Debug, Clone, Copy)]
pub struct HpcApi<'a> {
    sched: &'a WinHpcScheduler,
}

/// SDK node record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpcNodeInfo {
    /// Node name.
    pub name: String,
    /// Total cores.
    pub cores: u32,
    /// Cores allocated.
    pub cores_in_use: u32,
    /// Reachable and schedulable.
    pub online: bool,
}

impl<'a> HpcApi<'a> {
    /// `GetQueueState()` — the call the Windows detector makes each cycle.
    pub fn queue_state(&self) -> QueueSnapshot {
        self.sched.snapshot()
    }

    /// `GetNodeList()`.
    pub fn node_list(&self) -> Vec<HpcNodeInfo> {
        self.sched
            .node_states()
            .map(|(name, cores, used, online)| HpcNodeInfo {
                name: name.to_string(),
                cores,
                cores_in_use: used,
                online,
            })
            .collect()
    }

    /// `GetJobState(id)` — lifecycle state, if known.
    pub fn job_state(&self, id: JobId) -> Option<JobState> {
        self.sched.job(id).map(|j| j.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sched(n: u32) -> WinHpcScheduler {
        let mut s = WinHpcScheduler::eridani();
        for i in 1..=n {
            s.register_node(&format!("enode{i:02}.eridani.qgg.hud.ac.uk"), 4);
        }
        s
    }

    fn wjob(nodes: u32, ppn: u32) -> JobRequest {
        JobRequest::user("render", OsKind::Windows, nodes, ppn, SimDuration::from_mins(10))
    }

    #[test]
    fn core_packing_spans_nodes() {
        let mut s = sched(2);
        // 6 cores across two 4-core nodes
        let a = s.submit(wjob(1, 6), t(0));
        let started = s.try_dispatch(t(0));
        assert_eq!(started[0].job, a);
        assert_eq!(started[0].hosts.len(), 2);
        let snap = s.snapshot();
        assert_eq!(snap.cores_free, 2);
        assert_eq!(snap.nodes_free, 0);
    }

    #[test]
    fn fcfs_no_backfill_on_windows_side_too() {
        let mut s = sched(2);
        s.submit(wjob(1, 16), t(0)); // needs 16 cores, only 8 exist
        let small = s.submit(wjob(1, 1), t(0));
        assert!(s.try_dispatch(t(0)).is_empty());
        assert_eq!(s.job(small).unwrap().state, JobState::Queued);
    }

    #[test]
    fn completion_releases_cores() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 6), t(0));
        let b = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(b).unwrap().state, JobState::Queued);
        s.complete(a, t(60)).unwrap();
        assert_eq!(s.snapshot().cores_free, 8);
        let started = s.try_dispatch(t(60));
        assert_eq!(started[0].job, b);
    }

    #[test]
    fn multiple_jobs_share_and_release_correctly() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 3), t(0));
        let b = s.submit(wjob(1, 3), t(0));
        let c = s.submit(wjob(1, 2), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.snapshot().cores_free, 0);
        s.complete(b, t(10)).unwrap();
        assert_eq!(s.snapshot().cores_free, 3);
        s.complete(a, t(20)).unwrap();
        s.complete(c, t(30)).unwrap();
        assert_eq!(s.snapshot().cores_free, 8);
        assert_eq!(s.snapshot().nodes_free, 2);
    }

    #[test]
    fn switch_job_requires_whole_free_node() {
        let mut s = sched(2);
        // Two 1-core jobs first-fit onto node01; a 3-core job then takes
        // node01's remaining 2 cores plus 1 on node02 — no node fully free.
        let a = s.submit(wjob(1, 1), t(0));
        let b = s.submit(wjob(1, 1), t(0));
        let c = s.submit(wjob(1, 3), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(a).unwrap().exec_hosts, s.job(b).unwrap().exec_hosts);
        assert_eq!(s.job(c).unwrap().exec_hosts.len(), 2);
        assert_eq!(s.snapshot().nodes_free, 0);
        assert_eq!(s.snapshot().cores_free, 3);
        // 3 cores are free, so a 3-core *user* job would fit — but a switch
        // job needs a whole free node and must block.
        let sw = s.submit(JobRequest::os_switch(OsKind::Windows, OsKind::Linux, 4), t(1));
        assert!(s.try_dispatch(t(1)).is_empty());
        assert_eq!(s.job(sw).unwrap().state, JobState::Queued);
        // Drain everything; the switch dispatches onto the first free node.
        s.complete(a, t(2));
        s.complete(b, t(2));
        s.complete(c, t(2));
        let started = s.try_dispatch(t(2));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, sw);
        assert_eq!(started[0].hosts, ["enode01.eridani.qgg.hud.ac.uk"]);
    }

    #[test]
    fn greedy_packing_is_first_fit() {
        let mut s = sched(3);
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(
            s.job(a).unwrap().exec_hosts,
            ["enode01.eridani.qgg.hud.ac.uk"]
        );
        let b = s.submit(wjob(1, 2), t(1));
        s.try_dispatch(t(1));
        assert_eq!(
            s.job(b).unwrap().exec_hosts,
            ["enode02.eridani.qgg.hud.ac.uk"]
        );
    }

    #[test]
    fn api_queue_state_equals_snapshot() {
        let mut s = sched(4);
        s.submit(wjob(2, 4), t(0));
        s.submit(wjob(4, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.api().queue_state(), s.snapshot());
    }

    #[test]
    fn api_node_list() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        let nodes = s.api().node_list();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].cores_in_use, 4);
        assert_eq!(nodes[1].cores_in_use, 0);
        assert!(nodes.iter().all(|n| n.online && n.cores == 4));
        assert_eq!(s.api().job_state(a), Some(JobState::Running));
        assert_eq!(s.api().job_state(JobId(999)), None);
    }

    #[test]
    fn offline_node_excluded_from_packing() {
        let mut s = sched(2);
        s.set_node_offline("enode01.eridani.qgg.hud.ac.uk");
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(
            s.job(a).unwrap().exec_hosts,
            ["enode02.eridani.qgg.hud.ac.uk"]
        );
        // 6-core job can no longer fit
        s.submit(wjob(1, 6), t(1));
        assert!(s.try_dispatch(t(1)).is_empty());
    }

    #[test]
    fn full_id_format() {
        let mut s = sched(1);
        let a = s.submit(wjob(1, 1), t(0));
        assert_eq!(s.full_id(a), "JOB-1@winhead.eridani.qgg.hud.ac.uk");
    }

    #[test]
    fn snapshot_first_queued() {
        let mut s = sched(1);
        s.submit(wjob(1, 4), t(0));
        s.submit(wjob(2, 4), t(0));
        s.try_dispatch(t(0));
        let snap = s.snapshot();
        assert_eq!(snap.running, 1);
        assert_eq!(snap.queued, 1);
        assert_eq!(snap.first_queued_cpus, Some(8));
        assert!(snap.first_queued_id.unwrap().starts_with("JOB-2@"));
    }
}
