//! The Windows-HPC-like scheduler of the Windows head node.
//!
//! Windows HPC Server 2008 R2 schedules by *cores* rather than whole
//! nodes, and — unlike PBS — "Microsoft provides a SDK for programs to
//! fetch the data and send the tasks, e.g. get the queue state and nodes
//! state" (§III.B.3). The reproduction mirrors both: allocation is
//! core-granular (a job asking `nodes × ppn` cores may be packed across
//! any online nodes), and the typed [`HpcApi`] facade stands in for the
//! SDK the paper's Windows detector links against (no text scraping on
//! this side).
//!
//! Dispatch remains strict FCFS with no backfill, like the Linux side: the
//! paper's daemons treat both queues uniformly. As on the Linux side,
//! packing walks the `avail`/`idle` indexes rather than every node, and
//! `snapshot()` is counter-backed O(1).

use crate::job::{Job, JobId, JobKind, JobRequest, JobState};
use crate::scheduler::{Dispatch, QueueSnapshot, SchedPolicy, Scheduler};
use dualboot_bootconf::arena::{IdSet, ListRef, ListSlab, Sequence};
use dualboot_bootconf::node::NodeId;
use dualboot_bootconf::os::OsKind;
use dualboot_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// The Windows HPC head-node scheduler.
///
/// Per-node state is struct-of-arrays, mirroring
/// [`PbsScheduler`](crate::pbs::PbsScheduler): parallel dense vectors
/// indexed by [`NodeId::index0`], [`IdSet`] bitsets for the placement
/// indexes, per-node job lists in one shared [`ListSlab`], and the job
/// store in an append-only [`Sequence`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WinHpcScheduler {
    head: String,
    // Struct-of-arrays per-node state, indexed by `NodeId::index0`.
    registered: IdSet,
    hostname: Vec<String>,
    cores: Vec<u32>,
    used: Vec<u32>,
    online: IdSet,
    node_jobs: Vec<ListRef>,
    job_lists: ListSlab<JobId>,
    jobs: Sequence<Job>,
    /// Exact `(node, cores)` allocation of each running job, kept so that
    /// completion releases precisely what dispatch took.
    allocs: BTreeMap<u64, Vec<(NodeId, u32)>>,
    queue: VecDeque<JobId>,
    /// Queue-ordering policy (FCFS or FCFS + EASY backfill).
    #[serde(default)]
    policy: SchedPolicy,
    // Placement indexes and snapshot counters (derived state, rebuildable
    // from the arrays above; never serialized).
    /// Online nodes with at least one free core, ascending id.
    #[serde(skip)]
    avail: IdSet,
    /// Online nodes with zero cores used, ascending id.
    #[serde(skip)]
    idle: IdSet,
    #[serde(skip)]
    running: u32,
    #[serde(skip)]
    nodes_online: u32,
    #[serde(skip)]
    cores_online: u32,
    #[serde(skip)]
    cores_free: u32,
    #[serde(skip)]
    epoch: u64,
}

impl WinHpcScheduler {
    /// A fresh scheduler with the given head-node name.
    pub fn new(head: impl Into<String>) -> Self {
        WinHpcScheduler {
            head: head.into(),
            registered: IdSet::new(),
            hostname: Vec::new(),
            cores: Vec::new(),
            used: Vec::new(),
            online: IdSet::new(),
            node_jobs: Vec::new(),
            job_lists: ListSlab::new(),
            jobs: Sequence::new(1),
            allocs: BTreeMap::new(),
            queue: VecDeque::new(),
            policy: SchedPolicy::Fcfs,
            avail: IdSet::new(),
            idle: IdSet::new(),
            running: 0,
            nodes_online: 0,
            cores_online: 0,
            cores_free: 0,
            epoch: 0,
        }
    }

    /// Grow the dense per-node arrays to cover `id`, marking it
    /// registered. No-op if already known.
    fn ensure_node(&mut self, id: NodeId) {
        let i = id.index0();
        if i >= self.cores.len() {
            self.hostname.resize_with(i + 1, String::new);
            self.cores.resize(i + 1, 0);
            self.used.resize(i + 1, 0);
            self.node_jobs.resize(i + 1, ListRef::EMPTY);
        }
        self.registered.insert(id);
    }

    /// The paper's Windows head node on Eridani.
    pub fn eridani() -> Self {
        WinHpcScheduler::new("winhead.eridani.qgg.hud.ac.uk")
    }

    /// Head-node name.
    pub fn head(&self) -> &str {
        &self.head
    }

    /// Text id (`JOB-17@winhead...`) used in detector output.
    pub fn full_id(&self, id: JobId) -> String {
        format!("JOB-{}@{}", id.0, self.head)
    }

    /// Greedy core packing for a request. Returns `(node, cores)` pairs if
    /// the request fits, nodes in ascending id order. Scans only the
    /// `avail` index, after an O(1) total-capacity reject.
    fn place(&self, cpus_needed: u32) -> Option<Vec<(NodeId, u32)>> {
        if cpus_needed > self.cores_free {
            return None;
        }
        let mut remaining = cpus_needed;
        let mut picks = Vec::new();
        for id in &self.avail {
            let i = id.index0();
            let free = self.cores[i] - self.used[i];
            let take = free.min(remaining);
            picks.push((id, take));
            remaining -= take;
            if remaining == 0 {
                return Some(picks);
            }
        }
        None
    }

    /// Internal (EASY): like [`WinHpcScheduler::place`], but treats the
    /// reserved `(node, cores)` pairs as already taken. Each hold is capped
    /// at the node's current free cores (the projection may count cores a
    /// running job only frees later). `reserved` is in ascending node
    /// order, so the per-node lookup is a binary search.
    fn place_excluding(
        &self,
        cpus_needed: u32,
        reserved: &[(NodeId, u32)],
    ) -> Option<Vec<(NodeId, u32)>> {
        let mut total_held = 0u32;
        for &(n, take) in reserved {
            if self.online.contains(n) {
                let i = n.index0();
                total_held += take.min(self.cores[i] - self.used[i]);
            }
        }
        if cpus_needed + total_held > self.cores_free {
            return None;
        }
        let held_on = |id: NodeId| -> u32 {
            match reserved.binary_search_by_key(&id, |&(n, _)| n) {
                Ok(k) => reserved[k].1,
                Err(_) => 0,
            }
        };
        let mut remaining = cpus_needed;
        let mut picks = Vec::new();
        for id in &self.avail {
            let i = id.index0();
            let free = (self.cores[i] - self.used[i]).saturating_sub(held_on(id));
            let take = free.min(remaining);
            if take > 0 {
                picks.push((id, take));
                remaining -= take;
                if remaining == 0 {
                    return Some(picks);
                }
            }
        }
        None
    }

    /// Internal (EASY): project the earliest time `cpus_needed` cores can
    /// be packed, from running jobs' walltime-bounded releases, and the
    /// `(node, cores)` pairs the head would take then. Running jobs without
    /// a walltime never free in the projection.
    fn reserve_head(&self, cpus_needed: u32, now: SimTime) -> Option<(SimTime, Vec<(NodeId, u32)>)> {
        let mut ends: Vec<(SimTime, u64)> = Vec::new();
        for &id in self.allocs.keys() {
            let job = self.jobs.get(id).expect("running job exists");
            let Some(w) = job.req.walltime else { continue };
            let started = job.started_at.expect("running job has started");
            ends.push(((started + w).max(now), id));
        }
        ends.sort_unstable();
        let mut used = self.used.clone();
        for (end, id) in ends {
            for &(n, cores) in &self.allocs[&id] {
                if self.online.contains(n) {
                    let i = n.index0();
                    used[i] = used[i].saturating_sub(cores);
                }
            }
            let mut remaining = cpus_needed;
            let mut picks = Vec::new();
            for n in &self.online {
                let i = n.index0();
                let free = self.cores[i].saturating_sub(used[i]);
                let take = free.min(remaining);
                if take > 0 {
                    picks.push((n, take));
                    remaining -= take;
                    if remaining == 0 {
                        return Some((end, picks));
                    }
                }
            }
        }
        None
    }

    /// Internal (EASY): with the head blocked, reserve its projected cores
    /// and start any later queued user job whose walltime ends no later
    /// than the reservation on the unheld remainder. A blocked *switch*
    /// head is waiting for a whole node to drain — that is not expressible
    /// as a core reservation, so nothing backfills around it.
    fn backfill(&mut self, now: SimTime, started: &mut Vec<Dispatch>) {
        let Some(&head) = self.queue.front() else {
            return;
        };
        let head_req = self.jobs.get(head.0).expect("queued job exists").req.clone();
        if head_req.kind != JobKind::User {
            return;
        }
        let Some((res_at, reserved)) = self.reserve_head(head_req.cpus(), now) else {
            return;
        };
        let mut i = 1;
        while i < self.queue.len() {
            let id = self.queue[i];
            let req = self.jobs.get(id.0).expect("queued job exists").req.clone();
            let fits_window = req.kind == JobKind::User
                && matches!(req.walltime, Some(w) if now + w <= res_at);
            if !fits_window {
                i += 1;
                continue;
            }
            let Some(picks) = self.place_excluding(req.cpus(), &reserved) else {
                i += 1;
                continue;
            };
            self.queue.remove(i);
            let mut nodes = Vec::with_capacity(picks.len());
            for &(n, cores) in &picks {
                self.alloc(n, cores, id);
                nodes.push(n);
            }
            let job = self.jobs.get_mut(id.0).expect("queued job exists");
            job.state = JobState::Running;
            job.started_at = Some(now);
            job.exec_nodes = nodes.clone();
            self.running += 1;
            self.allocs.insert(id.0, picks);
            started.push(Dispatch {
                job: id,
                nodes,
                backfilled: true,
            });
        }
    }

    /// Internal: take `cores` on `id` for `job`, maintaining indexes.
    fn alloc(&mut self, id: NodeId, cores: u32, job: JobId) {
        let i = id.index0();
        let was_idle = self.used[i] == 0;
        self.used[i] += cores;
        self.job_lists.push(&mut self.node_jobs[i], job);
        let full = self.used[i] >= self.cores[i];
        self.cores_free -= cores;
        if full {
            self.avail.remove(id);
        }
        if was_idle {
            self.idle.remove(id);
        }
    }

    /// Internal: release up to `cores` held by `job` on `id`.
    fn release(&mut self, id: NodeId, cores: u32, job: JobId) {
        if !self.registered.contains(id) {
            return;
        }
        let i = id.index0();
        let freed = cores.min(self.used[i]);
        self.used[i] -= freed;
        self.job_lists.retain(&mut self.node_jobs[i], |j| *j != job);
        if self.online.contains(id) {
            self.cores_free += freed;
            if self.used[i] < self.cores[i] {
                self.avail.insert(id);
            }
            if self.used[i] == 0 {
                self.idle.insert(id);
            }
        }
    }

    /// Node states in id order: `(id, hostname, cores, used, online)`.
    pub fn node_states(&self) -> impl Iterator<Item = (NodeId, &str, u32, u32, bool)> {
        self.registered.iter().map(move |id| {
            let i = id.index0();
            (
                id,
                self.hostname[i].as_str(),
                self.cores[i],
                self.used[i],
                self.online.contains(id),
            )
        })
    }

    /// Jobs holding cores on a given node.
    pub fn jobs_on(&self, id: NodeId) -> Vec<JobId> {
        self.node_jobs
            .get(id.index0())
            .map(|list| self.job_lists.to_vec(list))
            .unwrap_or_default()
    }

    /// The SDK facade (paper: "Microsoft provides a SDK ... to fetch the
    /// data and send the tasks").
    pub fn api(&self) -> HpcApi<'_> {
        HpcApi { sched: self }
    }
}

impl Scheduler for WinHpcScheduler {
    fn os(&self) -> OsKind {
        OsKind::Windows
    }

    fn register_node(&mut self, id: NodeId, hostname: &str, cores: u32) {
        self.ensure_node(id);
        let i = id.index0();
        if self.online.contains(id) {
            self.nodes_online -= 1;
            self.cores_online -= self.cores[i];
            self.cores_free -= self.cores[i] - self.used[i];
        }
        self.cores[i] = cores;
        if self.hostname[i] != hostname {
            self.hostname[i] = hostname.to_string();
        }
        self.online.insert(id);
        let used = self.used[i];
        self.nodes_online += 1;
        self.cores_online += cores;
        self.cores_free += cores.saturating_sub(used);
        if used < cores {
            self.avail.insert(id);
        } else {
            self.avail.remove(id);
        }
        if used == 0 {
            self.idle.insert(id);
        }
        self.epoch += 1;
    }

    fn set_node_offline(&mut self, id: NodeId) {
        if self.online.contains(id) {
            self.online.remove(id);
            let i = id.index0();
            let (cores, used) = (self.cores[i], self.used[i]);
            self.nodes_online -= 1;
            self.cores_online -= cores;
            self.cores_free -= cores.saturating_sub(used);
            self.avail.remove(id);
            self.idle.remove(id);
            self.epoch += 1;
        }
    }

    fn is_node_online(&self, id: NodeId) -> bool {
        self.online.contains(id)
    }

    fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    fn node_hostname(&self, id: NodeId) -> Option<&str> {
        if !self.registered.contains(id) {
            return None;
        }
        self.hostname.get(id.index0()).map(String::as_str)
    }

    fn submit(&mut self, req: JobRequest, now: SimTime) -> JobId {
        debug_assert_eq!(req.os, OsKind::Windows, "Linux job submitted to WinHPC");
        let id = JobId(self.jobs.next_id());
        self.jobs.push(Job {
            id,
            req,
            state: JobState::Queued,
            submitted_at: now,
            started_at: None,
            finished_at: None,
            exec_nodes: Vec::new(),
        });
        self.queue.push_back(id);
        self.epoch += 1;
        id
    }

    fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(id.0) else {
            return false;
        };
        if job.state != JobState::Queued {
            return false;
        }
        job.state = JobState::Cancelled;
        self.queue.retain(|q| *q != id);
        self.epoch += 1;
        true
    }

    fn try_dispatch(&mut self, now: SimTime) -> Vec<Dispatch> {
        let mut started = Vec::new();
        while let Some(&head) = self.queue.front() {
            let req = self.jobs.get(head.0).expect("queued job exists").req.clone();
            // Switch jobs must own a whole free node (they reboot it);
            // ordinary jobs pack by cores.
            let placement = if req.kind == crate::job::JobKind::User {
                self.place(req.cpus())
            } else {
                self.idle
                    .iter()
                    .find(|id| self.cores[id.index0()] >= req.cpus())
                    .map(|id| vec![(id, self.cores[id.index0()])])
            };
            let Some(picks) = placement else {
                break;
            };
            self.queue.pop_front();
            let mut nodes = Vec::with_capacity(picks.len());
            for &(n, cores) in &picks {
                self.alloc(n, cores, head);
                nodes.push(n);
            }
            let job = self.jobs.get_mut(head.0).expect("queued job exists");
            job.state = JobState::Running;
            job.started_at = Some(now);
            job.exec_nodes = nodes.clone();
            self.running += 1;
            self.allocs.insert(head.0, picks);
            started.push(Dispatch {
                job: head,
                nodes,
                backfilled: false,
            });
        }
        if self.policy == SchedPolicy::Easy {
            self.backfill(now, &mut started);
        }
        if !started.is_empty() {
            self.epoch += 1;
        }
        started
    }

    fn complete(&mut self, id: JobId, now: SimTime) -> Option<Job> {
        let job = self.jobs.get_mut(id.0)?;
        if job.state != JobState::Running {
            return None;
        }
        job.state = JobState::Completed;
        job.finished_at = Some(now);
        let done = job.clone();
        // Release exactly what dispatch allocated.
        if let Some(picks) = self.allocs.remove(&id.0) {
            for (n, cores) in picks {
                self.release(n, cores, id);
            }
        }
        self.running -= 1;
        self.epoch += 1;
        Some(done)
    }

    fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id.0)
    }

    fn snapshot(&self) -> QueueSnapshot {
        let first = self
            .queue
            .front()
            .map(|id| self.jobs.get(id.0).expect("queued job exists"));
        QueueSnapshot {
            os: OsKind::Windows,
            running: self.running,
            queued: self.queue.len() as u32,
            first_queued_cpus: first.map(|j| j.req.cpus()),
            first_queued_id: first.map(|j| self.full_id(j.id)),
            nodes_online: self.nodes_online,
            nodes_free: self.idle.len() as u32,
            cores_online: self.cores_online,
            cores_free: self.cores_free,
        }
    }

    fn jobs(&self) -> Vec<&Job> {
        self.jobs.iter().collect()
    }

    fn free_nodes(&self) -> Vec<NodeId> {
        self.idle.iter().collect()
    }

    fn change_epoch(&self) -> u64 {
        self.epoch
    }
}

/// The typed SDK facade — the interface the paper's Windows-side detector
/// programs use instead of scraping text.
#[derive(Debug, Clone, Copy)]
pub struct HpcApi<'a> {
    sched: &'a WinHpcScheduler,
}

/// SDK node record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpcNodeInfo {
    /// Node name.
    pub name: String,
    /// Total cores.
    pub cores: u32,
    /// Cores allocated.
    pub cores_in_use: u32,
    /// Reachable and schedulable.
    pub online: bool,
}

impl<'a> HpcApi<'a> {
    /// `GetQueueState()` — the call the Windows detector makes each cycle.
    pub fn queue_state(&self) -> QueueSnapshot {
        self.sched.snapshot()
    }

    /// `GetNodeList()`.
    pub fn node_list(&self) -> Vec<HpcNodeInfo> {
        self.sched
            .node_states()
            .map(|(_, name, cores, used, online)| HpcNodeInfo {
                name: name.to_string(),
                cores,
                cores_in_use: used,
                online,
            })
            .collect()
    }

    /// `GetJobState(id)` — lifecycle state, if known.
    pub fn job_state(&self, id: JobId) -> Option<JobState> {
        self.sched.job(id).map(|j| j.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sched(n: u32) -> WinHpcScheduler {
        let mut s = WinHpcScheduler::eridani();
        for i in 1..=n {
            s.register_node(NodeId(i), &format!("enode{i:02}.eridani.qgg.hud.ac.uk"), 4);
        }
        s
    }

    fn wjob(nodes: u32, ppn: u32) -> JobRequest {
        JobRequest::user("render", OsKind::Windows, nodes, ppn, SimDuration::from_mins(10))
    }

    #[test]
    fn core_packing_spans_nodes() {
        let mut s = sched(2);
        // 6 cores across two 4-core nodes
        let a = s.submit(wjob(1, 6), t(0));
        let started = s.try_dispatch(t(0));
        assert_eq!(started[0].job, a);
        assert_eq!(started[0].nodes.len(), 2);
        let snap = s.snapshot();
        assert_eq!(snap.cores_free, 2);
        assert_eq!(snap.nodes_free, 0);
    }

    #[test]
    fn fcfs_no_backfill_on_windows_side_too() {
        let mut s = sched(2);
        s.submit(wjob(1, 16), t(0)); // needs 16 cores, only 8 exist
        let small = s.submit(wjob(1, 1), t(0));
        assert!(s.try_dispatch(t(0)).is_empty());
        assert_eq!(s.job(small).unwrap().state, JobState::Queued);
    }

    #[test]
    fn completion_releases_cores() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 6), t(0));
        let b = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(b).unwrap().state, JobState::Queued);
        s.complete(a, t(60)).unwrap();
        assert_eq!(s.snapshot().cores_free, 8);
        let started = s.try_dispatch(t(60));
        assert_eq!(started[0].job, b);
    }

    #[test]
    fn multiple_jobs_share_and_release_correctly() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 3), t(0));
        let b = s.submit(wjob(1, 3), t(0));
        let c = s.submit(wjob(1, 2), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.snapshot().cores_free, 0);
        s.complete(b, t(10)).unwrap();
        assert_eq!(s.snapshot().cores_free, 3);
        s.complete(a, t(20)).unwrap();
        s.complete(c, t(30)).unwrap();
        assert_eq!(s.snapshot().cores_free, 8);
        assert_eq!(s.snapshot().nodes_free, 2);
    }

    #[test]
    fn switch_job_requires_whole_free_node() {
        let mut s = sched(2);
        // Two 1-core jobs first-fit onto node01; a 3-core job then takes
        // node01's remaining 2 cores plus 1 on node02 — no node fully free.
        let a = s.submit(wjob(1, 1), t(0));
        let b = s.submit(wjob(1, 1), t(0));
        let c = s.submit(wjob(1, 3), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(a).unwrap().exec_nodes, s.job(b).unwrap().exec_nodes);
        assert_eq!(s.job(c).unwrap().exec_nodes.len(), 2);
        assert_eq!(s.snapshot().nodes_free, 0);
        assert_eq!(s.snapshot().cores_free, 3);
        // 3 cores are free, so a 3-core *user* job would fit — but a switch
        // job needs a whole free node and must block.
        let sw = s.submit(JobRequest::os_switch(OsKind::Windows, OsKind::Linux, 4), t(1));
        assert!(s.try_dispatch(t(1)).is_empty());
        assert_eq!(s.job(sw).unwrap().state, JobState::Queued);
        // Drain everything; the switch dispatches onto the first free node.
        s.complete(a, t(2));
        s.complete(b, t(2));
        s.complete(c, t(2));
        let started = s.try_dispatch(t(2));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, sw);
        assert_eq!(started[0].nodes, [NodeId(1)]);
    }

    #[test]
    fn greedy_packing_is_first_fit() {
        let mut s = sched(3);
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(a).unwrap().exec_nodes, [NodeId(1)]);
        let b = s.submit(wjob(1, 2), t(1));
        s.try_dispatch(t(1));
        assert_eq!(s.job(b).unwrap().exec_nodes, [NodeId(2)]);
    }

    #[test]
    fn api_queue_state_equals_snapshot() {
        let mut s = sched(4);
        s.submit(wjob(2, 4), t(0));
        s.submit(wjob(4, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.api().queue_state(), s.snapshot());
    }

    #[test]
    fn api_node_list() {
        let mut s = sched(2);
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        let nodes = s.api().node_list();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].cores_in_use, 4);
        assert_eq!(nodes[1].cores_in_use, 0);
        assert!(nodes.iter().all(|n| n.online && n.cores == 4));
        assert_eq!(s.api().job_state(a), Some(JobState::Running));
        assert_eq!(s.api().job_state(JobId(999)), None);
    }

    #[test]
    fn offline_node_excluded_from_packing() {
        let mut s = sched(2);
        s.set_node_offline(NodeId(1));
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        assert_eq!(s.job(a).unwrap().exec_nodes, [NodeId(2)]);
        // 6-core job can no longer fit
        s.submit(wjob(1, 6), t(1));
        assert!(s.try_dispatch(t(1)).is_empty());
    }

    #[test]
    fn full_id_format() {
        let mut s = sched(1);
        let a = s.submit(wjob(1, 1), t(0));
        assert_eq!(s.full_id(a), "JOB-1@winhead.eridani.qgg.hud.ac.uk");
    }

    #[test]
    fn snapshot_first_queued() {
        let mut s = sched(1);
        s.submit(wjob(1, 4), t(0));
        s.submit(wjob(2, 4), t(0));
        s.try_dispatch(t(0));
        let snap = s.snapshot();
        assert_eq!(snap.running, 1);
        assert_eq!(snap.queued, 1);
        assert_eq!(snap.first_queued_cpus, Some(8));
        assert!(snap.first_queued_id.unwrap().starts_with("JOB-2@"));
    }

    fn wwjob(nodes: u32, ppn: u32, wall_mins: u64) -> JobRequest {
        wjob(nodes, ppn).with_walltime(SimDuration::from_mins(wall_mins))
    }

    /// 3 nodes × 4 cores; a 4-core runner pins node 1 for 30 min; the head
    /// wants 9 cores (blocked: 8 free). The projected reservation takes all
    /// of nodes 1-2 plus one core on node 3, leaving 3 cores unheld.
    fn blocked_easy_sched() -> WinHpcScheduler {
        let mut s = sched(3);
        s.set_policy(SchedPolicy::Easy);
        s.submit(wwjob(1, 4, 30), t(0));
        assert_eq!(s.try_dispatch(t(0)).len(), 1);
        s.submit(wwjob(1, 9, 60), t(0)); // blocked head
        s
    }

    #[test]
    fn easy_backfills_cores_outside_the_reservation() {
        let mut s = blocked_easy_sched();
        let c = s.submit(wwjob(1, 3, 20), t(0));
        let started = s.try_dispatch(t(0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, c);
        assert!(started[0].backfilled);
        assert_eq!(s.job(c).unwrap().exec_nodes, [NodeId(3)]);
        // Only the 3 unheld cores were touched.
        assert_eq!(s.snapshot().cores_free, 5);
    }

    #[test]
    fn backfill_respects_reservation_window_and_held_cores() {
        let mut s = blocked_easy_sched();
        // Ends after the reservation: stays queued.
        s.submit(wwjob(1, 3, 40), t(0));
        assert!(s.try_dispatch(t(0)).is_empty());
        // Fits the window but needs more than the 3 unheld cores.
        s.submit(wwjob(1, 4, 10), t(0));
        assert!(s.try_dispatch(t(0)).is_empty());
    }

    #[test]
    fn walltime_less_jobs_never_backfill_on_windows() {
        let mut s = blocked_easy_sched();
        s.submit(wjob(1, 3), t(0)); // no walltime
        assert!(s.try_dispatch(t(0)).is_empty());
    }

    #[test]
    fn blocked_switch_head_suppresses_backfill() {
        let mut s = sched(2);
        s.set_policy(SchedPolicy::Easy);
        // One core busy on each node (with walltimes), so no node is fully
        // free and the switch head blocks.
        s.submit(wwjob(1, 1, 30), t(0));
        s.try_dispatch(t(0));
        s.submit(wwjob(1, 4, 30), t(0));
        s.try_dispatch(t(0)); // lands 3 on node 1, 1 on node 2
        let sw = s.submit(JobRequest::os_switch(OsKind::Windows, OsKind::Linux, 4), t(0));
        s.submit(wwjob(1, 1, 5), t(0)); // would fit, but head is a switch
        assert!(s.try_dispatch(t(0)).is_empty());
        assert_eq!(s.job(sw).unwrap().state, JobState::Queued);
    }

    #[test]
    fn easy_without_walltimes_matches_fcfs_on_windows() {
        let run = |policy: SchedPolicy| {
            let mut s = sched(2);
            s.set_policy(policy);
            s.submit(wjob(1, 4), t(0));
            s.submit(wjob(1, 16), t(0)); // impossible head
            s.submit(wjob(1, 1), t(0));
            let first = s.try_dispatch(t(1));
            (first, s.snapshot())
        };
        assert_eq!(run(SchedPolicy::Fcfs), run(SchedPolicy::Easy));
    }

    #[test]
    fn backfilled_windows_job_releases_exactly_its_cores() {
        let mut s = blocked_easy_sched();
        let c = s.submit(wwjob(1, 3, 20), t(0));
        s.try_dispatch(t(0));
        s.complete(c, t(300)).unwrap();
        assert_eq!(s.snapshot().cores_free, 8);
        assert_eq!(s.jobs_on(NodeId(3)), Vec::<JobId>::new());
    }

    #[test]
    fn counters_survive_offline_completion() {
        // A job's node goes offline while the job runs; completion must not
        // credit the offline node's cores back to the free pool.
        let mut s = sched(2);
        let a = s.submit(wjob(1, 4), t(0));
        s.try_dispatch(t(0));
        s.set_node_offline(NodeId(1));
        assert_eq!(s.snapshot().cores_online, 4);
        s.complete(a, t(5)).unwrap();
        let snap = s.snapshot();
        assert_eq!((snap.cores_free, snap.nodes_free), (4, 1));
        // Re-registering restores the (now fully free) node.
        s.register_node(NodeId(1), "enode01.eridani.qgg.hud.ac.uk", 4);
        let snap = s.snapshot();
        assert_eq!((snap.cores_free, snap.nodes_free, snap.nodes_online), (8, 2, 2));
    }
}
