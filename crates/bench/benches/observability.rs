//! Criterion: observability-bus overhead.
//!
//! The bus defaults off and must cost nothing there beyond one branch
//! per emission site — `bus/off` vs `bus/recording` on the same
//! one-day run bounds the tax, and the acceptance gate is that `off`
//! stays within noise of the pre-bus baseline. `export/jsonl` prices
//! the `--trace-out` serialisation path on a recorded chaos trace.

use criterion::{criterion_group, criterion_main, Criterion};
use dualboot_bench::alternating_bursts;
use dualboot_cluster::{FaultPlan, SimConfig, Simulation};
use dualboot_obs::{self as obs, ObsConfig};
use std::hint::black_box;

fn bench_bus_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/one_day");
    g.sample_size(20);
    let trace = alternating_bursts(17, 4, 1, 0.6);
    let cases = [
        ("bus/off", ObsConfig::disabled()),
        ("bus/recording", ObsConfig::recording()),
        ("bus/ring256", ObsConfig::ring(256)),
    ];
    for (label, obs_cfg) in cases {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder()
                    .v2()
                    .seed(17)
                    .faults(FaultPlan::default_chaos(17))
                    .observe(obs_cfg)
                    .build();
                cfg.initial_linux_nodes = 8;
                Simulation::new(cfg, black_box(trace.clone())).run()
            })
        });
    }
    g.finish();
}

fn bench_trace_export(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/export");
    g.sample_size(20);
    // One recorded chaos day supplies a realistic record mix.
    let trace = alternating_bursts(17, 4, 1, 0.6);
    let mut cfg = SimConfig::builder()
        .v2()
        .seed(17)
        .faults(FaultPlan::default_chaos(17))
        .observe(ObsConfig::recording())
        .build();
    cfg.initial_linux_nodes = 8;
    let sim = Simulation::new(cfg, trace);
    let sink = sim.obs().clone();
    sim.run();
    let records = sink.snapshot();

    g.bench_function("jsonl", |b| {
        b.iter(|| obs::to_jsonl(black_box(&records)))
    });
    let text = obs::to_jsonl(&records);
    g.bench_function("parse", |b| {
        b.iter(|| obs::from_jsonl(black_box(&text)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_bus_overhead, bench_trace_export);
criterion_main!(benches);
