//! Criterion: config-dialect parse/emit throughput (Figures 2, 3, 9, 10,
//! 14 artefact handling).
//!
//! The middleware rewrites these files on every switch; the benchmark
//! pins the cost of a full round trip per dialect.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dualboot_bootconf::diskpart::DiskpartScript;
use dualboot_bootconf::grub::{eridani, GrubConfig};
use dualboot_bootconf::idedisk::IdeDisk;
use dualboot_bootconf::os::OsKind;
use std::hint::black_box;

fn bench_grub(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootconf/grub");
    let fig2 = eridani::menu_lst().emit();
    let fig3 = eridani::controlmenu(OsKind::Linux).emit();
    g.bench_function("fig2_parse", |b| {
        b.iter(|| GrubConfig::parse(black_box(&fig2)).unwrap())
    });
    g.bench_function("fig3_parse", |b| {
        b.iter(|| GrubConfig::parse(black_box(&fig3)).unwrap())
    });
    g.bench_function("fig3_emit", |b| {
        let cfg = eridani::controlmenu(OsKind::Linux);
        b.iter(|| black_box(&cfg).emit())
    });
    g.bench_function("fig3_retarget", |b| {
        b.iter_batched(
            || eridani::controlmenu(OsKind::Linux),
            |mut cfg| {
                cfg.retarget(black_box(OsKind::Windows));
                cfg
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_diskpart(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootconf/diskpart");
    let fig10 = DiskpartScript::modified_v1(150_000).emit();
    g.bench_function("fig10_parse", |b| {
        b.iter(|| DiskpartScript::parse(black_box(&fig10)).unwrap())
    });
    g.bench_function("fig10_emit", |b| {
        let s = DiskpartScript::modified_v1(150_000);
        b.iter(|| black_box(&s).emit())
    });
    g.finish();
}

fn bench_idedisk(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootconf/idedisk");
    let fig14 = IdeDisk::eridani_v2().emit();
    g.bench_function("fig14_parse", |b| {
        b.iter(|| IdeDisk::parse(black_box(&fig14)).unwrap())
    });
    g.bench_function("fig14_emit", |b| {
        let d = IdeDisk::eridani_v2();
        b.iter(|| black_box(&d).emit())
    });
    g.finish();
}

criterion_group!(benches, bench_grub, bench_diskpart, bench_idedisk);
criterion_main!(benches);
