//! Criterion: the detector pipeline (Figures 5–8).
//!
//! The Linux detector runs every poll cycle and scrapes the full
//! `qstat -f` / `pbsnodes` text. Cost scales with queue depth and node
//! count, so the groups sweep both — the paper's detectors ran every
//! 5 minutes on a 16-node system, but a reusable middleware must not melt
//! on a larger one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dualboot_bootconf::os::OsKind;
use dualboot_core::detector::{PbsDetector, WinDetector};
use dualboot_des::time::{SimDuration, SimTime};
use dualboot_sched::job::JobRequest;
use dualboot_sched::pbs::PbsScheduler;
use dualboot_sched::pbs_text::{parse_pbsnodes, pbsnodes, qstat_f};
use dualboot_sched::scheduler::Scheduler;
use dualboot_bootconf::node::NodeId;
use dualboot_sched::winhpc::WinHpcScheduler;
use std::hint::black_box;

fn pbs_with(nodes: u32, queued_jobs: u32) -> PbsScheduler {
    let mut s = PbsScheduler::eridani();
    for i in 1..=nodes {
        s.register_node(
            NodeId(i as u32),
            &format!("enode{i:02}.eridani.qgg.hud.ac.uk"),
            4,
        );
    }
    for k in 0..queued_jobs {
        s.submit(
            JobRequest::user(
                format!("job-{k}"),
                OsKind::Linux,
                1,
                4,
                SimDuration::from_mins(10),
            ),
            SimTime::from_secs(u64::from(k)),
        );
    }
    s.try_dispatch(SimTime::from_secs(u64::from(queued_jobs)));
    s
}

fn bench_qstat_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector/qstat_scrape");
    for depth in [1u32, 16, 64, 256] {
        let s = pbs_with(16, depth);
        let text = qstat_f(&s);
        g.bench_with_input(BenchmarkId::new("emit", depth), &s, |b, s| {
            b.iter(|| qstat_f(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("scrape_detect", depth), &text, |b, text| {
            b.iter(|| PbsDetector.run(black_box(text)).unwrap())
        });
    }
    g.finish();
}

fn bench_pbsnodes_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector/pbsnodes_scrape");
    for nodes in [16u32, 64, 256] {
        let s = pbs_with(nodes, nodes / 2);
        let text = pbsnodes(&s, SimTime::from_secs(60));
        g.bench_with_input(BenchmarkId::new("emit", nodes), &s, |b, s| {
            b.iter(|| pbsnodes(black_box(s), SimTime::from_secs(60)))
        });
        g.bench_with_input(BenchmarkId::new("scrape", nodes), &text, |b, text| {
            b.iter(|| parse_pbsnodes(black_box(text)).unwrap())
        });
    }
    g.finish();
}

fn bench_win_sdk(c: &mut Criterion) {
    // The asymmetry the paper describes: the SDK path has no text at all.
    let mut s = WinHpcScheduler::eridani();
    for i in 1..=16 {
        s.register_node(NodeId(i), &format!("enode{i:02}.eridani.qgg.hud.ac.uk"), 4);
    }
    for k in 0..64 {
        s.submit(
            JobRequest::user(
                format!("render-{k}"),
                OsKind::Windows,
                1,
                4,
                SimDuration::from_mins(10),
            ),
            SimTime::from_secs(k),
        );
    }
    s.try_dispatch(SimTime::from_secs(64));
    c.bench_function("detector/win_sdk_detect", |b| {
        b.iter(|| WinDetector.run(black_box(&s.api())))
    });
}

criterion_group!(
    benches,
    bench_qstat_pipeline,
    bench_pbsnodes_pipeline,
    bench_win_sdk
);
criterion_main!(benches);
