//! Criterion: chaos-campaign overhead.
//!
//! Fault injection must be cheap enough to leave on by default: a quiet
//! plan is an exact passthrough (the dice is never consulted), and even
//! the full default campaign only adds counter bumps and a handful of
//! extra events. This bench pins the cost of one simulated day clean,
//! under the default chaos plan, and under a hot lossy link.

use criterion::{criterion_group, criterion_main, Criterion};
use dualboot_bench::alternating_bursts;
use dualboot_cluster::{FaultPlan, SimConfig, Simulation};
use dualboot_net::faulty::LinkFaults;
use std::hint::black_box;

fn bench_chaos_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos/one_day");
    g.sample_size(20);
    let trace = alternating_bursts(17, 4, 1, 0.6);
    let plans = [
        ("quiet", FaultPlan::default()),
        ("default_chaos", FaultPlan::default_chaos(17)),
        (
            "hot_link",
            FaultPlan {
                seed: 17,
                link: LinkFaults {
                    drop_p: 0.3,
                    dup_p: 0.2,
                    delay_p: 0.3,
                    delay_polls: 2,
                },
                events: Vec::new(),
            },
        ),
    ];
    for (label, plan) in plans {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder().v2().seed(17).build();
                cfg.initial_linux_nodes = 8;
                cfg.faults = plan.clone();
                Simulation::new(cfg, black_box(trace.clone())).run()
            })
        });
    }
    g.finish();
}

fn bench_plan_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos/plan_json");
    let plan = FaultPlan::default_chaos(42);
    let json = plan.to_json();
    g.bench_function("serialize", |b| b.iter(|| black_box(&plan).to_json()));
    g.bench_function("parse", |b| {
        b.iter(|| FaultPlan::from_json(black_box(&json)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_chaos_overhead, bench_plan_roundtrip);
criterion_main!(benches);
