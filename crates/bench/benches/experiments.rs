//! Criterion: one group per paper experiment (E1–E8).
//!
//! Each bench prints its experiment's table once (the rows EXPERIMENTS.md
//! records) and then measures the cost of regenerating a reduced variant,
//! so `cargo bench` both reproduces the results and times the harness.

use criterion::{criterion_group, criterion_main, Criterion};
use dualboot_bench as bench;
use std::hint::black_box;
use std::sync::Once;

static PRINT_TABLES: Once = Once::new();

fn print_all_tables() {
    PRINT_TABLES.call_once(|| {
        println!("\n================ reproduced tables (full parameters) ================");
        println!("== T1 ==\n{}", bench::t1_catalogue());
        println!("{}", bench::e1_switch_latency(&[1, 2, 3, 4, 5]).render());
        println!(
            "{}",
            bench::e2_bistable_vs_monostable(&[0.3, 0.5, 0.7, 0.9], 2012).render()
        );
        println!(
            "{}",
            bench::e3_utilisation_vs_mix(&[10, 30, 50, 70, 90], 2012).render()
        );
        println!("{}", bench::e4_deployment_effort().render());
        println!(
            "{}",
            bench::e5_poll_interval(&[1, 2, 5, 10, 20, 30], 2012).render()
        );
        let (p, s) = bench::e6_mdcs_case_study(2012);
        println!("{}", p.render());
        println!("{}", s.render());
        println!("{}", bench::e7_policy_ablation(2012).render());
        println!("{}", bench::e8_switch_mechanism().render());
        println!("{}", bench::e9_rom_compatibility().render());
        println!("{}", bench::e10_cycle_asymmetry(2012).render());
        println!("{}", bench::e11_flag_races(2012).render());
        println!("======================================================================\n");
    });
}

fn bench_experiments(c: &mut Criterion) {
    print_all_tables();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("e1_switch_latency", |b| {
        b.iter(|| bench::e1_switch_latency(black_box(&[1])))
    });
    g.bench_function("e2_bistable_vs_monostable", |b| {
        b.iter(|| bench::e2_bistable_vs_monostable(black_box(&[0.5]), 1))
    });
    g.bench_function("e3_utilisation_vs_mix", |b| {
        b.iter(|| bench::e3_utilisation_vs_mix(black_box(&[30]), 1))
    });
    g.bench_function("e4_deployment_effort", |b| {
        b.iter(bench::e4_deployment_effort)
    });
    g.bench_function("e5_poll_interval", |b| {
        b.iter(|| bench::e5_poll_interval(black_box(&[5]), 1))
    });
    g.bench_function("e6_mdcs_case_study", |b| {
        b.iter(|| bench::e6_mdcs_case_study(black_box(1)))
    });
    g.bench_function("e7_policy_ablation", |b| {
        b.iter(|| bench::e7_policy_ablation(black_box(1)))
    });
    g.bench_function("e8_switch_mechanism", |b| {
        b.iter(bench::e8_switch_mechanism)
    });
    g.bench_function("e9_rom_compatibility", |b| {
        b.iter(bench::e9_rom_compatibility)
    });
    g.bench_function("e10_cycle_asymmetry", |b| {
        b.iter(|| bench::e10_cycle_asymmetry(black_box(1)))
    });
    g.bench_function("e11_flag_races", |b| {
        b.iter(|| bench::e11_flag_races(black_box(1)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
