//! Criterion: one full Figure-11 control cycle and its pieces.
//!
//! Measures the middleware's own overhead — the wire encode/decode, a
//! full daemon poll (pump → scrape → decide → act), and the v1 switch
//! application on the disk model — i.e. the cost the middleware adds on
//! top of the schedulers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dualboot_bootconf::os::OsKind;
use dualboot_core::daemon::{LinuxDaemon, WindowsDaemon};
use dualboot_core::detector::{DetectorOutput, PbsDetector, WinDetector};
use dualboot_core::policy::FcfsPolicy;
use dualboot_core::{switchjob, Version};
use dualboot_deploy::oscar::OscarDeployer;
use dualboot_deploy::windows::WindowsDeployer;
use dualboot_des::time::{SimDuration, SimTime};
use dualboot_hw::node::{ComputeNode, FirmwareBootOrder};
use dualboot_net::transport::in_proc_pair;
use dualboot_net::wire::DetectorReport;
use dualboot_sched::job::JobRequest;
use dualboot_sched::pbs::PbsScheduler;
use dualboot_sched::pbs_text::qstat_f;
use dualboot_sched::scheduler::Scheduler;
use dualboot_sched::winhpc::WinHpcScheduler;
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/wire");
    let report = DetectorReport::stuck(4, "1191.eridani.qgg.hud.ac.uk");
    let encoded = report.encode().unwrap();
    g.bench_function("encode", |b| b.iter(|| black_box(&report).encode().unwrap()));
    g.bench_function("decode", |b| {
        b.iter(|| DetectorReport::decode(black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_full_poll_cycle(c: &mut Criterion) {
    // A realistic stuck scenario: Windows queue backed up, Linux idle.
    let mut win = WinHpcScheduler::eridani();
    win.submit(
        JobRequest::user("opera", OsKind::Windows, 2, 4, SimDuration::from_mins(10)),
        SimTime::ZERO,
    );
    let win_out = WinDetector.run(&win.api());
    let mut pbs = PbsScheduler::eridani();
    for i in 1..=16 {
        pbs.register_node(
            dualboot_bootconf::node::NodeId(i),
            &format!("enode{i:02}.eridani.qgg.hud.ac.uk"),
            4,
        );
    }
    let qstat = qstat_f(&pbs);

    c.bench_function("control/full_poll_cycle", |b| {
        b.iter_batched(
            || {
                let (lt, wt) = in_proc_pair();
                (
                    LinuxDaemon::new(Version::V2, lt, FcfsPolicy),
                    WindowsDaemon::new(wt),
                )
            },
            |(mut lin, mut wind)| {
                // Steps 1-2
                wind.tick(&win_out, SimTime::ZERO).unwrap();
                // Steps 3-5
                lin.pump(SimTime::from_secs(1)).unwrap();
                let out: DetectorOutput = PbsDetector.run(&qstat).unwrap();
                let actions = lin.poll(&out, 16, 16, SimTime::from_secs(1)).unwrap();
                let wactions = wind.pump(SimTime::from_secs(1)).unwrap();
                (actions, wactions)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_v1_switch_apply(c: &mut Criterion) {
    let mk = || {
        let mut n = ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk);
        WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        OscarDeployer::eridani(dualboot_deploy::Version::V1)
            .deploy(&mut n)
            .unwrap();
        n
    };
    c.bench_function("control/v1_switch_apply", |b| {
        b.iter_batched(
            mk,
            |mut n| {
                switchjob::apply_v1_switch(&mut n.disk, black_box(OsKind::Windows)).unwrap();
                n
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_boot_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/boot_resolve");
    let mut v1 = ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk);
    WindowsDeployer::v1_patched().deploy(&mut v1).unwrap();
    OscarDeployer::eridani(dualboot_deploy::Version::V1)
        .deploy(&mut v1)
        .unwrap();
    g.bench_function("v1_local_grub_chain", |b| {
        b.iter(|| dualboot_hw::boot::resolve_local(black_box(&v1.disk)).unwrap())
    });

    let mut v2 = ComputeNode::eridani(1, FirmwareBootOrder::PxeFirst);
    WindowsDeployer::v1_patched().deploy(&mut v2).unwrap();
    OscarDeployer::eridani(dualboot_deploy::Version::V2)
        .deploy(&mut v2)
        .unwrap();
    let pxe = dualboot_hw::pxe::PxeService::eridani_v2();
    g.bench_function("v2_pxe_chain", |b| {
        b.iter(|| {
            dualboot_hw::boot::resolve_pxe(black_box(&v2.disk), &v2.mac, v2.nic, Some(&pxe)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_full_poll_cycle,
    bench_v1_switch_apply,
    bench_boot_resolution
);
criterion_main!(benches);
