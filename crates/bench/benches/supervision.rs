//! Criterion: node-health supervision overhead.
//!
//! The boot watchdog and the daemon journal are on by default, so their
//! cost on a *healthy* day must be noise: a clean run arms one deadline
//! per boot and cancels it at `BootComplete`, and the journal appends a
//! few words per switch order. This bench pins one simulated day with
//! supervision on and off — on a quiet plan, where the two must be
//! indistinguishable, and under the default chaos campaign, where
//! supervision is actually retrying boots and replaying the journal.

use criterion::{criterion_group, criterion_main, Criterion};
use dualboot_bench::alternating_bursts;
use dualboot_cluster::{FaultPlan, SimConfig, Simulation};
use std::hint::black_box;

fn bench_supervision_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervision/one_day");
    g.sample_size(20);
    let trace = alternating_bursts(17, 4, 1, 0.6);
    let cases = [
        ("quiet/supervised", FaultPlan::default(), true),
        ("quiet/unsupervised", FaultPlan::default(), false),
        ("chaos/supervised", FaultPlan::default_chaos(17), true),
        ("chaos/unsupervised", FaultPlan::default_chaos(17), false),
    ];
    for (label, plan, supervised) in cases {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder().v2().seed(17).build();
                cfg.initial_linux_nodes = 8;
                cfg.faults = plan.clone();
                cfg.supervision.watchdog = supervised;
                cfg.supervision.journal = supervised;
                Simulation::new(cfg, black_box(trace.clone())).run()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_supervision_overhead);
criterion_main!(benches);
