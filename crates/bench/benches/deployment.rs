//! Criterion: deployment and reimaging flows (experiment E4's machinery).
//!
//! Measures single-node deploys under both generations, the master-script
//! generate+patch pass, and a whole 16-node maintenance campaign.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dualboot_bootconf::idedisk::IdeDisk;
use dualboot_bootconf::oscarimage::MasterScript;
use dualboot_deploy::campaign::{CampaignEvent, ReimageCampaign};
use dualboot_deploy::oscar::OscarDeployer;
use dualboot_deploy::windows::WindowsDeployer;
use dualboot_deploy::Version;
use dualboot_hw::disk::Disk;
use std::hint::black_box;

fn bench_single_node_deploys(c: &mut Criterion) {
    let mut g = c.benchmark_group("deploy/single_node");
    for (label, version) in [("v1", Version::V1), ("v2", Version::V2)] {
        g.bench_function(format!("windows_then_linux_{label}"), |b| {
            b.iter_batched(
                Disk::eridani,
                |mut disk| {
                    WindowsDeployer::v1_patched().deploy_disk(&mut disk).unwrap();
                    OscarDeployer::eridani(version).deploy_disk(&mut disk).unwrap();
                    disk
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("v2_reimage_in_place", |b| {
        b.iter_batched(
            || {
                let mut disk = Disk::eridani();
                WindowsDeployer::v1_patched().deploy_disk(&mut disk).unwrap();
                OscarDeployer::eridani(Version::V2).deploy_disk(&mut disk).unwrap();
                disk
            },
            |mut disk| {
                WindowsDeployer::v2_reimage().deploy_disk(&mut disk).unwrap();
                disk
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_master_script(c: &mut Criterion) {
    let layout = IdeDisk::eridani_v1();
    c.bench_function("deploy/master_generate_and_patch", |b| {
        b.iter(|| {
            let mut script = MasterScript::generate(black_box(&layout));
            script.apply_v1_patches(&layout);
            script
        })
    });
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("deploy/campaign_16_nodes");
    g.sample_size(10);
    let events = [
        CampaignEvent::WindowsReimage,
        CampaignEvent::LinuxReimage,
        CampaignEvent::WindowsReimage,
    ];
    for (label, version) in [("v1", Version::V1), ("v2", Version::V2)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                ReimageCampaign::new(version, 16)
                    .unwrap()
                    .run(black_box(&events))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_node_deploys, bench_master_script, bench_campaign);
criterion_main!(benches);
