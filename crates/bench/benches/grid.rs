//! Criterion: campus-grid federation overhead.
//!
//! The broker sits on the submit path of every job in the campus, so its
//! per-job cost must stay negligible next to the simulation work itself.
//! This bench pins (a) the pure per-decision routing cost for each policy
//! over a realistic gossiped view, and (b) the end-to-end cost of a
//! federated day relative to the sum of its member clusters run alone.

use criterion::{criterion_group, criterion_main, Criterion};
use dualboot_bootconf::os::OsKind;
use dualboot_des::time::{SimDuration, SimTime};
use dualboot_grid::{Broker, GridSim, GridSpec, MemberCaps, RoutePolicy};
use dualboot_net::proto::ClusterReport;
use dualboot_sched::job::JobRequest;
use std::hint::black_box;

/// A broker over `n` members with a plausible mid-day view installed.
fn primed_broker(policy: RoutePolicy, n: usize) -> Broker {
    let spec = GridSpec::campus(11, n);
    let caps: Vec<MemberCaps> = spec
        .members
        .iter()
        .map(|m| MemberCaps::from_config(&m.cfg))
        .collect();
    let mut broker = Broker::new(policy, caps);
    let at = SimTime::from_mins(90);
    for i in 0..n {
        let i32u = i as u32;
        broker.observe(
            i,
            at,
            ClusterReport {
                at,
                linux_queued: i32u % 3,
                windows_queued: (i32u + 1) % 4,
                linux_free_cores: 8 * (i32u % 5),
                windows_free_cores: 4 * (i32u % 3),
                linux_nodes: 8,
                windows_nodes: 8,
                booting: i32u % 2,
                quarantined: 0,
            },
        );
    }
    broker
}

fn bench_route_decision(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid/route_one_job");
    let fresh: Vec<ClusterReport> = (0..8)
        .map(|i| ClusterReport {
            at: SimTime::from_mins(91),
            linux_queued: i % 2,
            linux_free_cores: 16,
            windows_free_cores: 8,
            linux_nodes: 8,
            windows_nodes: 8,
            ..ClusterReport::default()
        })
        .collect();
    let req = JobRequest::user(
        "bench-job".to_string(),
        OsKind::Windows,
        2,
        4,
        SimDuration::from_mins(20),
    );
    for policy in RoutePolicy::ALL {
        g.bench_function(policy.name(), |b| {
            let mut broker = primed_broker(policy, 8);
            let now = SimTime::from_mins(92);
            b.iter(|| broker.route(black_box(&req), now, black_box(&fresh)))
        });
    }
    g.finish();
}

fn bench_federated_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid/one_day");
    g.sample_size(10);
    let day = |routing| {
        let mut spec = GridSpec::campus(7, 3);
        spec.routing = routing;
        spec.workload.duration = SimDuration::from_hours(24);
        spec
    };
    for policy in RoutePolicy::ALL {
        g.bench_function(policy.name(), |b| {
            b.iter(|| GridSim::new(black_box(day(policy))).run())
        });
    }
    g.bench_function("chaos_coop", |b| {
        b.iter(|| {
            let mut spec = day(RoutePolicy::SwitchCoop);
            spec.apply_chaos();
            GridSim::new(black_box(spec)).run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_route_decision, bench_federated_day);
criterion_main!(benches);
