//! Criterion: end-to-end simulation throughput, per evaluation mode.
//!
//! The experiment sweeps replay hundreds of simulated days; this bench
//! pins how long one day costs per mode, and how the event engine scales
//! with cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dualboot_bench::alternating_bursts;
use dualboot_cluster::{Mode, SimConfig, Simulation};
use dualboot_des::queue::EventQueue;
use dualboot_des::time::SimDuration;
use dualboot_workload::generator::WorkloadSpec;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/one_day");
    g.sample_size(20);
    let trace = alternating_bursts(9, 4, 1, 0.6);
    for (label, mode) in [
        ("dualboot", Mode::DualBoot),
        ("static_split", Mode::StaticSplit),
        ("mono_stable", Mode::MonoStable),
        ("oracle", Mode::Oracle),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder().v2().seed(9).build();
                cfg.mode = mode;
                cfg.initial_linux_nodes = 8;
                Simulation::new(cfg, black_box(trace.clone())).run()
            })
        });
    }
    g.finish();
}

fn bench_cluster_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/cluster_scale");
    g.sample_size(10);
    for nodes in [16u32, 64, 128] {
        let trace = WorkloadSpec {
            duration: SimDuration::from_hours(4),
            windows_fraction: 0.3,
            ..WorkloadSpec::campus_default(11)
        }
        .with_offered_load(0.6, u32::from(nodes) * 4)
        .generate();
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &trace, |b, trace| {
            b.iter(|| {
                let mut cfg = SimConfig::builder().v2().seed(11).build();
                cfg.nodes = nodes;
                cfg.initial_linux_nodes = nodes;
                Simulation::new(cfg, trace.clone()).run()
            })
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/event_queue");
    for n in [1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(SimDuration::from_millis((i * 7919) % 100_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes, bench_cluster_scale, bench_event_queue);
criterion_main!(benches);
