//! Scale sweep: wall-clock cost of `Simulation::run` as the cluster and
//! workload grow (16 → 65536 nodes).
//!
//! The paper's deployment is 16 nodes, but a reusable middleware must not
//! melt on a real campus cluster. This harness plays a dispatch-heavy
//! synthetic workload (or an SWF trace) at every node count and reports
//! wall-clock, jobs/s and events-derived throughput as bench-comparable
//! JSON on stdout.
//!
//! ```sh
//! cargo run --release -p dualboot-bench --bin scale             # full sweep
//! cargo run --release -p dualboot-bench --bin scale -- --smoke  # CI subset
//! cargo run --release -p dualboot-bench --bin scale -- --swf trace.swf
//! cargo run --release -p dualboot-bench --bin scale -- --queue calendar
//! cargo run --release -p dualboot-bench --bin scale -- --backend elastic
//! cargo run --release -p dualboot-bench --bin scale -- --policy easy
//! ```
//!
//! The JSON is hand-formatted (flat numbers and strings only) so the
//! harness stays dependency-free and the output is diffable across runs.

use dualboot_cluster::{NodeBackendKind, SchedPolicy, SimConfig, Simulation};
use dualboot_des::time::SimDuration;
use dualboot_des::QueueBackend;
use dualboot_workload::generator::{SubmitEvent, WorkloadSpec};
use dualboot_workload::swf::{import, SwfImportOptions};
use std::time::Instant;

/// One measured point of the sweep.
struct Point {
    nodes: u32,
    jobs: usize,
    wall_ms: f64,
    completed: u32,
    unfinished: u32,
    switches: u32,
    jobs_per_s: f64,
    /// Throughput in *completed* jobs per wall second — the honest rate
    /// when a point saturates and strands work at the horizon.
    completed_jobs_per_s: f64,
    /// True when the offered load outran the cluster: jobs were still
    /// waiting or running when the trace horizon closed.
    saturated: bool,
}

/// A dispatch-heavy synthetic trace sized to the cluster: mostly 1-node
/// jobs at high offered load, with enough Windows work to keep the
/// middleware switching. Job count scales linearly with the node count,
/// so every sweep point stresses the same per-job paths.
fn synthetic_trace(seed: u64, nodes: u32, cores_per_node: u32, hours: u64) -> Vec<SubmitEvent> {
    WorkloadSpec {
        duration: SimDuration::from_hours(hours),
        mean_runtime: SimDuration::from_mins(8),
        runtime_sigma: 0.4,
        windows_fraction: 0.25,
        node_weights: vec![0.8, 0.15, 0.05],
        ..WorkloadSpec::campus_default(seed)
    }
    .with_offered_load(0.85, nodes * cores_per_node)
    .generate()
}

fn measure(
    nodes: u32,
    trace: Vec<SubmitEvent>,
    seed: u64,
    queue: QueueBackend,
    backend: NodeBackendKind,
    sched: SchedPolicy,
) -> Point {
    let cfg = SimConfig::builder()
        .v2()
        .seed(seed)
        .nodes(nodes, 4)
        .queue_backend(queue)
        .backend(backend.to_backend())
        .sched(sched)
        .build();
    let jobs = trace.len();
    let sim = Simulation::new(cfg, trace);
    let started = Instant::now();
    let r = sim.run();
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let completed = r.total_completed();
    Point {
        nodes,
        jobs,
        wall_ms,
        completed,
        unfinished: r.unfinished,
        switches: r.switches,
        jobs_per_s: jobs as f64 / wall.as_secs_f64().max(1e-9),
        completed_jobs_per_s: f64::from(completed) / wall.as_secs_f64().max(1e-9),
        saturated: r.unfinished > 0,
    }
}

fn fmt_f(v: f64) -> String {
    // Stable fixed-point form; the values are milliseconds / rates, three
    // decimals is plenty and avoids exponent notation in the JSON.
    format!("{v:.3}")
}

fn emit_json(mode: &str, workload: &str, queue: &str, backend: &str, sched: &str, points: &[Point]) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"scale\",\n  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"queue\": \"{queue}\",\n"));
    out.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    out.push_str(&format!("  \"sched\": \"{sched}\",\n"));
    out.push_str(&format!("  \"workload\": \"{workload}\",\n  \"results\": [\n"));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"jobs\": {}, \"wall_ms\": {}, \"jobs_per_s\": {}, \
             \"completed_jobs_per_s\": {}, \"completed\": {}, \"unfinished\": {}, \
             \"switches\": {}, \"saturated\": {}}}{}\n",
            p.nodes,
            p.jobs,
            fmt_f(p.wall_ms),
            fmt_f(p.jobs_per_s),
            fmt_f(p.completed_jobs_per_s),
            p.completed,
            p.unfinished,
            p.switches,
            p.saturated,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let swf_path = args
        .iter()
        .position(|a| a == "--swf")
        .and_then(|i| args.get(i + 1));
    let queue: QueueBackend = args
        .iter()
        .position(|a| a == "--queue")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .unwrap_or_default();
    let backend: NodeBackendKind = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            NodeBackendKind::parse(s).unwrap_or_else(|| {
                eprintln!("unknown backend {s:?} (dual-boot|static-split|vm|elastic)");
                std::process::exit(2);
            })
        })
        .unwrap_or(NodeBackendKind::DualBoot);
    let sched: SchedPolicy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            SchedPolicy::parse(s).unwrap_or_else(|| {
                eprintln!("unknown policy {s:?} (fcfs|easy)");
                std::process::exit(2);
            })
        })
        .unwrap_or_default();
    let seed = 2012u64;

    let sweep: &[u32] = if smoke {
        &[16, 256, 65536]
    } else {
        &[16, 64, 256, 1024, 4096, 16384, 65536]
    };
    let mode = if smoke { "smoke" } else { "full" };

    let mut points = Vec::new();
    match swf_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read SWF {path}: {e}");
                std::process::exit(2);
            });
            let trace = import(&text, &SwfImportOptions::default()).unwrap_or_else(|e| {
                eprintln!("SWF import failed: {e}");
                std::process::exit(2);
            });
            for &n in sweep {
                points.push(measure(n, trace.clone(), seed, queue, backend, sched));
                eprintln!(
                    "nodes={n:>5}  wall={:>10.1} ms  jobs/s={:>10.0}",
                    points.last().unwrap().wall_ms,
                    points.last().unwrap().jobs_per_s
                );
            }
            emit_json(mode, "swf", queue_name(queue), backend.name(), sched.name(), &points);
        }
        None => {
            for &n in sweep {
                // Short horizons keep the CI lane quick and bound the
                // 16k/65k tail (job count scales linearly with nodes, so
                // the big points are already the dominant cost).
                let hours = if smoke || n >= 16384 { 2 } else { 6 };
                let trace = synthetic_trace(seed, n, 4, hours);
                points.push(measure(n, trace, seed, queue, backend, sched));
                eprintln!(
                    "nodes={n:>5}  wall={:>10.1} ms  jobs/s={:>10.0}",
                    points.last().unwrap().wall_ms,
                    points.last().unwrap().jobs_per_s
                );
            }
            emit_json(mode, "synthetic", queue_name(queue), backend.name(), sched.name(), &points);
        }
    }
}

fn queue_name(q: QueueBackend) -> &'static str {
    match q {
        QueueBackend::Heap => "heap",
        QueueBackend::Calendar => "calendar",
    }
}
