//! Regenerate every table and figure of the reproduction in one run.
//!
//! ```sh
//! cargo run --release -p dualboot-bench --bin experiments            # all
//! cargo run --release -p dualboot-bench --bin experiments -- e3 e7  # some
//! ```
//!
//! The output rows are the ones EXPERIMENTS.md records; rerunning this
//! binary reproduces them bit-for-bit (all randomness is seeded).

use dualboot_bench as bench;

fn want(args: &[String], id: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if want(&args, "t1") {
        println!("== T1: Table I — application catalogue ==");
        println!("{}", bench::t1_catalogue());
    }
    if want(&args, "e1") {
        println!("{}", bench::e1_switch_latency(&[1, 2, 3, 4, 5]).render());
        println!("{}", bench::e1_latency_histogram(&[1, 2, 3, 4, 5]));
    }
    if want(&args, "e2") {
        println!(
            "{}",
            bench::e2_bistable_vs_monostable(&[0.3, 0.5, 0.7, 0.9], 2012).render()
        );
    }
    if want(&args, "e3") {
        println!(
            "{}",
            bench::e3_utilisation_vs_mix(&[10, 30, 50, 70, 90], 2012).render()
        );
    }
    if want(&args, "e4") {
        println!("{}", bench::e4_deployment_effort().render());
    }
    if want(&args, "e5") {
        println!("{}", bench::e5_poll_interval(&[1, 2, 5, 10, 20, 30], 2012).render());
    }
    if want(&args, "e6") {
        let (policies, series) = bench::e6_mdcs_case_study(2012);
        println!("{}", policies.render());
        println!("{}", series.render());
    }
    if want(&args, "e7") {
        println!("{}", bench::e7_policy_ablation(2012).render());
    }
    if want(&args, "e8") {
        println!("{}", bench::e8_switch_mechanism().render());
    }
    if want(&args, "e9") {
        println!("{}", bench::e9_rom_compatibility().render());
    }
    if want(&args, "e10") {
        println!("{}", bench::e10_cycle_asymmetry(2012).render());
    }
    if want(&args, "e11") {
        println!("{}", bench::e11_flag_races(2012).render());
    }
}
