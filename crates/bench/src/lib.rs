//! # dualboot-bench — the experiment harness
//!
//! One function per experiment in EXPERIMENTS.md; the `experiments`
//! binary prints every table, and the Criterion benches in `benches/`
//! measure the machinery behind each one. The experiment functions return
//! [`Table`]s so the binary, the benches and the tests all share one
//! implementation.
//!
//! | Function | Experiment | Paper hook |
//! |---|---|---|
//! | [`t1_catalogue`] | T1 | Table I |
//! | [`e1_switch_latency`] | E1 | "reboot ... no more than five minutes" |
//! | [`e2_bistable_vs_monostable`] | E2 | bi-stable "flexibility and speed-up" vs \[5\] |
//! | [`e3_utilisation_vs_mix`] | E3 | dual-boot vs static sub-clusters (§I) |
//! | [`e4_deployment_effort`] | E4 | v1 manual burden vs v2 (§III.C/§IV.B) |
//! | [`e5_poll_interval`] | E5 | 5/10-minute detector cycles (§III.B/§IV.A) |
//! | [`e6_mdcs_case_study`] | E6 | the MATLAB MDCS day (§IV.B) |
//! | [`e7_policy_ablation`] | E7 | FCFS + the §V future-work policies |
//! | [`e8_switch_mechanism`] | E8 | FAT-file vs PXE-flag robustness (§IV.A.1) |
//! | [`e9_rom_compatibility`] | E9 | PXEGRUB vs GRUB4DOS NIC support (§IV.A.1) |
//! | [`e10_cycle_asymmetry`] | E10 | emergent: stale-report over-switching |
//! | [`e11_flag_races`] | E11 | emergent: Figure-13 single-flag races |

use dualboot_bootconf::os::OsKind;
use dualboot_cluster::report::{fmt_secs, result_row, Table, RESULT_HEADERS};
use dualboot_cluster::{Mode, PolicyKind, SimConfig, SimResult, Simulation};
use dualboot_core::switchjob;
use dualboot_deploy::campaign::{CampaignEvent, ReimageCampaign};
use dualboot_deploy::oscar::OscarDeployer;
use dualboot_deploy::windows::WindowsDeployer;
use dualboot_des::time::SimDuration;
use dualboot_hw::node::{ComputeNode, FirmwareBootOrder};
use dualboot_hw::pxe::PxeService;
use dualboot_workload::generator::{SubmitEvent, WorkloadSpec};
use dualboot_workload::mdcs::MdcsCaseStudy;

/// An alternating-burst campus workload: the demand pattern the paper's
/// deployment lives on (a research group monopolises the cluster on one
/// platform for a while, then another group on the other platform —
/// batches of short tasks like Backburner render frames or MDCS GA
/// evaluations, mean 12 minutes). `burst_hours` per burst, alternating
/// Linux/Windows, at the given offered load for Eridani's 64 cores.
pub fn alternating_bursts(seed: u64, bursts: u32, burst_hours: u64, load: f64) -> Vec<SubmitEvent> {
    let mut events = Vec::new();
    for b in 0..bursts {
        let windows = b % 2 == 1;
        let spec = WorkloadSpec {
            seed: seed.wrapping_add(u64::from(b) * 7919),
            duration: SimDuration::from_hours(burst_hours),
            windows_fraction: if windows { 1.0 } else { 0.0 },
            mean_runtime: SimDuration::from_mins(12),
            runtime_sigma: 0.5,
            node_weights: vec![0.5, 0.3, 0.2],
            ppn: 4,
            diurnal_depth: 0.0,
            walltime_factor: None,
            overrun_fraction: 0.0,
            jobs_per_hour: 1.0, // overwritten below
        }
        .with_offered_load(load, 64);
        let offset = SimDuration::from_hours(u64::from(b) * burst_hours);
        for mut ev in spec.generate() {
            ev.at += offset;
            events.push(ev);
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

/// T1 — render Table I.
pub fn t1_catalogue() -> String {
    dualboot_workload::catalog::render_table1()
}

/// E1 — switch-latency distribution across seeds: every reboot must meet
/// the paper's five-minute bound.
pub fn e1_switch_latency(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E1: OS-switch downtime (paper claim: \"no more than five minutes\")",
        &["seed", "switches", "mean", "p50", "p95", "max"],
    );
    for &seed in seeds {
        let trace = alternating_bursts(seed, 4, 1, 0.7);
        let r = Simulation::new(SimConfig::builder().v2().seed(seed).build(), trace).run();
        table.row(&[
            format!("{seed}"),
            format!("{}", r.switches),
            fmt_secs(r.switch_latency.mean()),
            fmt_secs(r.switch_latency_pct.percentile(50.0).unwrap_or(0.0)),
            fmt_secs(r.switch_latency_pct.percentile(95.0).unwrap_or(0.0)),
            fmt_secs(r.switch_latency.max().unwrap_or(0.0)),
        ]);
    }
    table
}

/// E1 companion: the pooled switch-downtime distribution across seeds,
/// rendered as an ASCII histogram over the boot model's clamp range.
pub fn e1_latency_histogram(seeds: &[u64]) -> String {
    let mut hist = dualboot_des::stats::Histogram::new(180.0, 300.0, 6);
    for &seed in seeds {
        let trace = alternating_bursts(seed, 4, 1, 0.7);
        let r = Simulation::new(SimConfig::builder().v2().seed(seed).build(), trace).run();
        for &sample in r.switch_latency_pct.samples() {
            hist.push(sample);
        }
    }
    format!(
        "E1 histogram: switch downtime, seconds (clamp 180..300)\n{}",
        hist.render(40)
    )
}

/// E2 — bi-stable (dualboot-oscar) vs mono-stable (one-Linux-scheduler
/// hybrid that boots Windows per job) across offered loads, on the
/// alternating-burst pattern.
pub fn e2_bistable_vs_monostable(loads: &[f64], seed: u64) -> Table {
    let mut table = Table::new(
        "E2: bi-stable vs mono-stable (alternating 2h bursts of 12-min tasks)",
        &[
            "load",
            "system",
            "turnaround",
            "makespan",
            "util",
            "switches",
        ],
    );
    for &load in loads {
        let trace = alternating_bursts(seed, 4, 2, load);
        let runs: [(&str, Mode, PolicyKind, bool); 3] = [
            ("bi-stable/fcfs", Mode::DualBoot, PolicyKind::Fcfs, false),
            (
                "bi-stable/threshold",
                Mode::DualBoot,
                PolicyKind::Threshold { queue_threshold: 2 },
                true,
            ),
            ("mono-stable", Mode::MonoStable, PolicyKind::Fcfs, false),
        ];
        for (label, mode, policy, omniscient) in runs {
            let mut cfg = SimConfig::builder().v2().seed(seed).build();
            cfg.mode = mode;
            cfg.policy = policy;
            cfg.omniscient = omniscient;
            let r = Simulation::new(cfg, trace.clone()).run();
            table.row(&[
                format!("{load:.2}"),
                label.to_string(),
                fmt_secs(r.turnaround.mean()),
                format!("{}", r.makespan),
                format!("{:.1}%", 100.0 * r.utilisation()),
                format!("{}", r.switches),
            ]);
        }
    }
    table
}

/// E3 — utilisation and wait vs the workload's Windows share, for the
/// middleware (FCFS and threshold), a static 8/8 split, and the oracle.
pub fn e3_utilisation_vs_mix(mixes_pct: &[u32], seed: u64) -> Table {
    let mut table = Table::new(
        "E3: strategies vs Windows share (sustained load 0.7, static split 8/8)",
        &["win%", "strategy", "util", "wait(all)", "unfinished", "switches"],
    );
    for &pct in mixes_pct {
        let trace = WorkloadSpec {
            windows_fraction: f64::from(pct) / 100.0,
            duration: SimDuration::from_hours(8),
            ..WorkloadSpec::campus_default(seed)
        }
        .with_offered_load(0.7, 64)
        .generate();
        let runs: [(&str, Mode, PolicyKind, bool, u32); 4] = [
            ("dualboot/fcfs", Mode::DualBoot, PolicyKind::Fcfs, false, 16),
            (
                "dualboot/threshold",
                Mode::DualBoot,
                PolicyKind::Threshold { queue_threshold: 2 },
                true,
                16,
            ),
            ("static 8/8", Mode::StaticSplit, PolicyKind::Fcfs, false, 8),
            ("oracle", Mode::Oracle, PolicyKind::Fcfs, false, 16),
        ];
        for (label, mode, policy, omniscient, split) in runs {
            let mut cfg = SimConfig::builder().v2().seed(seed).build();
            cfg.mode = mode;
            cfg.policy = policy;
            cfg.omniscient = omniscient;
            cfg.initial_linux_nodes = split;
            cfg.horizon = SimDuration::from_hours(48);
            let r = Simulation::new(cfg, trace.clone()).run();
            table.row(&[
                format!("{pct}"),
                label.to_string(),
                format!("{:.1}%", 100.0 * r.utilisation()),
                fmt_secs(r.mean_wait_s()),
                format!("{}", r.unfinished),
                format!("{}", r.switches),
            ]);
        }
    }
    table
}

/// E4 — deployment/maintenance effort, v1 vs v2, over a maintenance year
/// (quarterly Windows reimages + one Linux rebuild).
pub fn e4_deployment_effort() -> Table {
    let events = [
        CampaignEvent::WindowsReimage,
        CampaignEvent::LinuxReimage,
        CampaignEvent::WindowsReimage,
        CampaignEvent::WindowsReimage,
        CampaignEvent::LinuxReimage,
        CampaignEvent::WindowsReimage,
    ];
    let mut table = Table::new(
        "E4: fleet maintenance effort over 6 events (16 nodes)",
        &[
            "version",
            "manual steps",
            "collateral L reinstalls",
            "L outage node-events",
            "wall time",
        ],
    );
    for (label, version) in [
        ("v1.0", dualboot_deploy::Version::V1),
        ("v2.0", dualboot_deploy::Version::V2),
    ] {
        let report = ReimageCampaign::new(version, 16)
            .expect("fleet deploys")
            .run(&events)
            .expect("campaign runs");
        table.row(&[
            label.to_string(),
            format!("{}", report.manual_steps),
            format!("{}", report.collateral_linux_reinstalls),
            format!("{}", report.linux_outage_node_events),
            format!("{}", report.wall_time),
        ]);
    }
    table
}

/// E5 — sensitivity to the detector poll cycle (the paper uses 5 min in
/// v1 and 10 min in v2). Run under the threshold policy so the sweep
/// isolates *responsiveness*: under FCFS the dominant interval effect is
/// the stale-report over-switching documented in EXPERIMENTS.md.
pub fn e5_poll_interval(minutes: &[u64], seed: u64) -> Table {
    let mut table = Table::new(
        "E5: poll-cycle sensitivity (alternating bursts, load 0.7, threshold policy)",
        &["cycle", "wait(all)", "wait(W)", "switches", "makespan"],
    );
    for &m in minutes {
        let trace = alternating_bursts(seed, 6, 1, 0.7);
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.lin_cycle = SimDuration::from_mins(m);
        cfg.win_cycle = SimDuration::from_mins(m);
        cfg.policy = PolicyKind::Threshold { queue_threshold: 2 };
        cfg.omniscient = true;
        let r = Simulation::new(cfg, trace).run();
        table.row(&[
            format!("{m}min"),
            fmt_secs(r.mean_wait_s()),
            fmt_secs(r.mean_wait_os_s(OsKind::Windows)),
            format!("{}", r.switches),
            format!("{}", r.makespan),
        ]);
    }
    table
}

/// E6 — the MDCS case study: per-policy summary plus the node-share
/// series for the threshold run.
pub fn e6_mdcs_case_study(seed: u64) -> (Table, Table) {
    let case = MdcsCaseStudy::default_config(seed);
    let trace = case.generate();
    let mut policy_table = Table::new(
        "E6: MDCS GA day — policies",
        &["policy", "switches", "util", "wait(W)", "makespan"],
    );
    let mut series_result: Option<SimResult> = None;
    for (label, policy, omniscient) in [
        ("fcfs (paper)", PolicyKind::Fcfs, false),
        ("threshold(2)", PolicyKind::Threshold { queue_threshold: 2 }, true),
        ("proportional", PolicyKind::Proportional { min_per_side: 1 }, true),
    ] {
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.policy = policy;
        cfg.omniscient = omniscient;
        let record = label.starts_with("threshold");
        cfg.record_series = record;
        cfg.sample_every = SimDuration::from_mins(30);
        let r = Simulation::new(cfg, trace.clone()).run();
        policy_table.row(&[
            label.to_string(),
            format!("{}", r.switches),
            format!("{:.1}%", 100.0 * r.utilisation()),
            fmt_secs(r.mean_wait_os_s(OsKind::Windows)),
            format!("{}", r.makespan),
        ]);
        if record {
            series_result = Some(r);
        }
    }
    let mut series_table = Table::new(
        "E6: node share over the MDCS day (threshold policy)",
        &["t", "linux", "windows", "booting", "q(W)"],
    );
    if let Some(r) = series_result {
        for p in r.series {
            series_table.row(&[
                format!("{}", p.at),
                format!("{}", p.linux_nodes),
                format!("{}", p.windows_nodes),
                format!("{}", p.booting_nodes),
                format!("{}", p.windows_queued),
            ]);
        }
    }
    (policy_table, series_table)
}

/// E7 — policy ablation on a sustained mixed load.
pub fn e7_policy_ablation(seed: u64) -> Table {
    let trace = WorkloadSpec {
        windows_fraction: 0.4,
        duration: SimDuration::from_hours(8),
        ..WorkloadSpec::campus_default(seed)
    }
    .with_offered_load(0.75, 64)
    .generate();
    let mut table = Table::new("E7: switch-policy ablation (40% Windows, load 0.75)", &RESULT_HEADERS);
    let runs: [(&str, PolicyKind, bool); 5] = [
        ("fcfs (paper, wire-only)", PolicyKind::Fcfs, false),
        ("threshold(2)", PolicyKind::Threshold { queue_threshold: 2 }, true),
        ("threshold(4)", PolicyKind::Threshold { queue_threshold: 4 }, true),
        (
            "hysteresis(2,2)",
            PolicyKind::Hysteresis {
                persistence: 2,
                cooldown: 2,
            },
            false,
        ),
        ("proportional(min 1)", PolicyKind::Proportional { min_per_side: 1 }, true),
    ];
    for (label, policy, omniscient) in runs {
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.policy = policy;
        cfg.omniscient = omniscient;
        cfg.horizon = SimDuration::from_hours(48);
        let r = Simulation::new(cfg, trace.clone()).run();
        table.row(&result_row(label, &r));
    }
    table
}

/// E8 — switch-mechanism robustness: power resets injected at offsets
/// through the switch window, v1 FAT-rename vs v2 PXE-flag, measured at
/// the hardware-model level (does the node boot the intended OS?).
pub fn e8_switch_mechanism() -> Table {
    let mut table = Table::new(
        "E8: power reset during switch-to-Windows, by reset offset",
        &["offset", "v1 boots", "v2 boots"],
    );
    // The Figure-4 script: config change lands ~2 s in, reboot at ~10 s.
    for offset_s in [0u64, 1, 2, 3, 5, 8] {
        let mk_v1 = || {
            let mut n = ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk);
            WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
            OscarDeployer::eridani(dualboot_deploy::Version::V1)
                .deploy(&mut n)
                .unwrap();
            n
        };
        let mk_v2 = || {
            let mut n = ComputeNode::eridani(1, FirmwareBootOrder::PxeFirst);
            WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
            OscarDeployer::eridani(dualboot_deploy::Version::V2)
                .deploy(&mut n)
                .unwrap();
            n
        };
        // v1: the rename happens at t=2 s; a reset before that boots stale.
        let mut v1 = mk_v1();
        if offset_s >= 2 {
            switchjob::apply_v1_switch(&mut v1.disk, OsKind::Windows).unwrap();
        }
        v1.begin_boot();
        let v1_os = v1.complete_boot(None).unwrap().0;

        // v2: the flag was set at decision time, before the job even ran.
        let mut pxe = PxeService::eridani_v2();
        pxe.menu_dir_mut().set_flag(OsKind::Windows);
        let mut v2 = mk_v2();
        v2.begin_boot();
        let v2_os = v2.complete_boot(Some(&pxe)).unwrap().0;

        table.row(&[
            format!("{offset_s}s"),
            format!("{v1_os}"),
            format!("{v2_os}"),
        ]);
    }
    table
}

/// E9 — boot-ROM / LAN-card compatibility (§IV.A.1): the reason v2 moved
/// from PXEGRUB (GRUB 0.97) to GRUB4DOS. For each ROM, which cards can be
/// steered over PXE at all?
pub fn e9_rom_compatibility() -> Table {
    use dualboot_bootconf::grub4dos::{ControlMode, PxeMenuDir};
    use dualboot_hw::nic::{BootRom, NicModel};
    let mut table = Table::new(
        "E9: PXE boot-ROM vs LAN card (can the head node steer the node?)",
        &["LAN card", "era", "PXEGRUB (GRUB 0.97)", "GRUB4DOS"],
    );
    for nic in NicModel::ALL {
        let mut row = vec![format!("{nic}"), format!("{:?}", nic.era())];
        for rom in [BootRom::PxeGrub097, BootRom::Grub4Dos] {
            let dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Windows);
            let svc = PxeService::with_rom(dir, rom);
            let mut n = ComputeNode::eridani(1, FirmwareBootOrder::PxeFirst);
            n.nic = nic;
            WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
            OscarDeployer::eridani(dualboot_deploy::Version::V2)
                .deploy(&mut n)
                .unwrap();
            n.begin_boot();
            let steered = matches!(
                n.complete_boot(Some(&svc)),
                Ok((_, dualboot_hw::boot::BootPath::Pxe))
            );
            row.push(if steered { "steered" } else { "escapes control" }.to_string());
        }
        table.row(&row);
    }
    table
}

/// E10 — the emergent poll-cycle asymmetry finding: under FCFS, a Windows
/// cycle *slower* than the Linux poll makes the decider act on stale stuck
/// reports and re-order switches for bursts that are already being served
/// — accidental over-provisioning that halves Windows waits. The paper's
/// v2 configuration (5-minute Linux poll, 10-minute Windows cycle) has
/// this property; synchronised cycles do not.
pub fn e10_cycle_asymmetry(seed: u64) -> Table {
    let mut table = Table::new(
        "E10: FCFS under cycle asymmetry (alternating bursts, load 0.7)",
        &["lin cycle", "win cycle", "switches", "wait(all)", "wait(W)", "makespan"],
    );
    for (lin, win) in [(5u64, 10u64), (5, 5), (10, 10), (10, 5), (5, 20)] {
        let trace = alternating_bursts(seed, 6, 1, 0.7);
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.lin_cycle = SimDuration::from_mins(lin);
        cfg.win_cycle = SimDuration::from_mins(win);
        let r = Simulation::new(cfg, trace).run();
        table.row(&[
            format!("{lin}min"),
            format!("{win}min"),
            format!("{}", r.switches),
            fmt_secs(r.mean_wait_s()),
            fmt_secs(r.mean_wait_os_s(OsKind::Windows)),
            format!("{}", r.makespan),
        ]);
    }
    table
}

/// E11 — Figure 12 vs Figure 13: per-node PXE menus vs the shipped single
/// flag. The paper chose the single flag for simplicity ("the whole
/// dual-boot cluster will only need one system at one time"); under
/// high-churn rebalancing that assumption breaks and reboots land on
/// whatever the flag says *now*, not what the order meant.
pub fn e11_flag_races(seed: u64) -> Table {
    use dualboot_bootconf::grub4dos::ControlMode;
    let mut table = Table::new(
        "E11: single-flag vs per-node PXE control under churn (proportional policy)",
        &["control", "switches", "misdirected", "wait(all)", "makespan"],
    );
    for (label, mode) in [
        ("single-flag(Fig13)", ControlMode::SingleFlag),
        ("per-node(Fig12)", ControlMode::PerNode),
    ] {
        let trace = alternating_bursts(seed, 6, 1, 0.8);
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.policy = PolicyKind::Proportional { min_per_side: 1 };
        cfg.omniscient = true;
        cfg.pxe_control = mode;
        let r = Simulation::new(cfg, trace).run();
        table.row(&[
            label.to_string(),
            format!("{}", r.switches),
            format!("{}", r.misdirected_switches),
            fmt_secs(r.mean_wait_s()),
            format!("{}", r.makespan),
        ]);
    }
    table
}

/// Convenience: run one small dual-boot simulation (used by the Criterion
/// throughput benches).
pub fn small_sim(seed: u64) -> SimResult {
    let trace = alternating_bursts(seed, 2, 1, 0.6);
    Simulation::new(SimConfig::builder().v2().seed(seed).build(), trace).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimTime;

    #[test]
    fn alternating_bursts_alternate() {
        let trace = alternating_bursts(1, 4, 1, 0.5);
        assert!(!trace.is_empty());
        let first_hour_windows = trace
            .iter()
            .filter(|e| e.at < SimTime::from_mins(60))
            .any(|e| e.req.os == OsKind::Windows);
        assert!(!first_hour_windows, "burst 0 is Linux");
        let second_hour_all_windows = trace
            .iter()
            .filter(|e| e.at >= SimTime::from_mins(60) && e.at < SimTime::from_mins(120))
            .all(|e| e.req.os == OsKind::Windows);
        assert!(second_hour_all_windows, "burst 1 is Windows");
    }

    #[test]
    fn e1_meets_five_minute_bound() {
        let t = e1_switch_latency(&[1, 2]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("E1"));
    }

    #[test]
    fn e1_histogram_covers_the_clamp_range_only() {
        let text = e1_latency_histogram(&[1, 2]);
        assert!(text.contains("180.0"));
        assert!(text.contains("300.0"));
        assert!(!text.contains("outliers"), "no sample may escape the clamp");
    }

    #[test]
    fn e2_bistable_beats_monostable_on_bursts() {
        let t = e2_bistable_vs_monostable(&[0.6], 3);
        assert_eq!(t.len(), 3); // fcfs, threshold, mono-stable
    }

    #[test]
    fn e4_v2_cheaper() {
        let t = e4_deployment_effort();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e8_rows_show_the_stale_boot() {
        let t = e8_switch_mechanism();
        let text = t.render();
        // offsets 0 and 1 (before the rename): v1 boots Linux, v2 Windows
        let rows: Vec<&str> = text.lines().skip(3).collect();
        assert!(rows[0].contains("Linux") && rows[0].contains("Windows"));
        // offset >= 2: both Windows
        assert!(!rows[3].contains("Linux"));
    }

    #[test]
    fn e9_pxegrub_loses_modern_cards() {
        let t = e9_rom_compatibility();
        let text = t.render();
        assert!(text.contains("escapes control"));
        // GRUB4DOS column never escapes
        for line in text.lines().skip(3) {
            let cols: Vec<&str> = line.split("  ").filter(|s| !s.trim().is_empty()).collect();
            if cols.len() >= 4 {
                assert!(cols[3].trim().starts_with("steered"), "{line}");
            }
        }
    }

    #[test]
    fn e10_asymmetry_over_switches() {
        let t = e10_cycle_asymmetry(2012);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn e11_per_node_never_misdirects() {
        let t = e11_flag_races(5);
        let text = t.render();
        let rows: Vec<&str> = text.lines().skip(3).collect();
        // per-node row: misdirected column is 0
        assert!(rows[1].contains("per-node"));
        let cols: Vec<&str> = rows[1].split_whitespace().collect();
        // columns: control, switches, misdirected, wait, makespan
        let mis: u32 = cols[2].parse().unwrap_or(99);
        assert_eq!(mis, 0);
    }

    #[test]
    fn small_sim_completes() {
        let r = small_sim(5);
        assert!(r.total_completed() > 0);
        assert_eq!(r.unfinished, 0);
    }
}
