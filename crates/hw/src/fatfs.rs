//! The shared FAT control filesystem.
//!
//! dualboot-oscar v1.0 stores GRUB's real menu (`controlmenu.lst`) on a
//! small FAT partition both operating systems can write (paper §III.B.1).
//! The OS-switch batch scripts do not edit the file: they *rename* one of
//! two pre-staged variants (`controlmenu_to_linux.lst`,
//! `controlmenu_to_windows.lst`) over it — FAT renames are effectively
//! atomic, which is why the paper replaced Carter's in-place Perl editor
//! with rename-based batch scripts. This module models exactly the file
//! operations those scripts perform.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A minimal FAT filesystem: flat namespace, text contents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatFs {
    files: BTreeMap<String, String>,
}

impl FatFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        FatFs::default()
    }

    /// Write (create or replace) a file.
    pub fn write(&mut self, name: &str, contents: impl Into<String>) {
        self.files.insert(name.to_string(), contents.into());
    }

    /// Read a file's contents.
    pub fn read(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(String::as_str)
    }

    /// True if the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Remove a file; returns its contents if it existed.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.files.remove(name)
    }

    /// Rename `from` over `to`, replacing any existing `to` (the v1 switch
    /// primitive). Returns `false` (no change) when `from` does not exist.
    ///
    /// Note the rename *consumes* the source: after a switch the pre-staged
    /// variant is gone and must be re-staged — the batch scripts in the
    /// paper copy the variants back onto the partition, modelled by
    /// [`FatFs::copy`].
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        match self.files.remove(from) {
            Some(contents) => {
                self.files.insert(to.to_string(), contents);
                true
            }
            None => false,
        }
    }

    /// Copy `from` to `to` (used to re-stage switch variants).
    pub fn copy(&mut self, from: &str, to: &str) -> bool {
        match self.files.get(from).cloned() {
            Some(contents) => {
                self.files.insert(to.to_string(), contents);
                true
            }
            None => false,
        }
    }

    /// File names in sorted order.
    pub fn list(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Erase everything (a reformat).
    pub fn format(&mut self) {
        self.files.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut fs = FatFs::new();
        fs.write("controlmenu.lst", "default 0");
        assert_eq!(fs.read("controlmenu.lst"), Some("default 0"));
        assert!(fs.exists("controlmenu.lst"));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn rename_replaces_destination() {
        let mut fs = FatFs::new();
        fs.write("controlmenu.lst", "old");
        fs.write("controlmenu_to_windows.lst", "win");
        assert!(fs.rename("controlmenu_to_windows.lst", "controlmenu.lst"));
        assert_eq!(fs.read("controlmenu.lst"), Some("win"));
        // the source is consumed
        assert!(!fs.exists("controlmenu_to_windows.lst"));
    }

    #[test]
    fn rename_missing_source_is_noop() {
        let mut fs = FatFs::new();
        fs.write("controlmenu.lst", "old");
        assert!(!fs.rename("nope.lst", "controlmenu.lst"));
        assert_eq!(fs.read("controlmenu.lst"), Some("old"));
    }

    #[test]
    fn copy_keeps_source() {
        let mut fs = FatFs::new();
        fs.write("a", "x");
        assert!(fs.copy("a", "b"));
        assert_eq!(fs.read("a"), Some("x"));
        assert_eq!(fs.read("b"), Some("x"));
        assert!(!fs.copy("missing", "c"));
    }

    #[test]
    fn remove_and_format() {
        let mut fs = FatFs::new();
        fs.write("a", "1");
        fs.write("b", "2");
        assert_eq!(fs.remove("a"), Some("1".to_string()));
        assert_eq!(fs.remove("a"), None);
        fs.format();
        assert!(fs.is_empty());
    }

    #[test]
    fn list_is_sorted() {
        let mut fs = FatFs::new();
        fs.write("b", "");
        fs.write("a", "");
        let names: Vec<_> = fs.list().collect();
        assert_eq!(names, ["a", "b"]);
    }
}
