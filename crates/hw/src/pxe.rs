//! The head node's PXE boot service (DHCP + TFTP + GRUB4DOS ROM).
//!
//! dualboot-oscar v2.0 serves a GRUB4DOS network boot ROM from the Linux
//! head node; DHCP and TFTP "specify individual boot ROM and configure
//! file for each node" (paper §IV.A.1). The service wraps the
//! [`PxeMenuDir`] from `dualboot-bootconf` and adds the operational state
//! the simulation needs: whether the service is answering at all (a downed
//! head node must make PXE boots fail, not hang).

use dualboot_bootconf::grub::GrubConfig;
use crate::nic::BootRom;
use dualboot_bootconf::grub4dos::PxeMenuDir;
use dualboot_bootconf::mac::MacAddr;
use dualboot_bootconf::os::OsKind;
use serde::{Deserialize, Serialize};

/// The DHCP/TFTP/GRUB4DOS boot service running on the Linux head node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PxeService {
    menu_dir: PxeMenuDir,
    /// Which network boot ROM DHCP points nodes at (§IV.A.1: PXEGRUB
    /// first, GRUB4DOS after the NIC-driver dead end).
    rom: BootRom,
    enabled: bool,
    /// TFTP menu fetches served (observability for tests/benches).
    fetches: u64,
}

impl PxeService {
    /// A service answering requests, backed by the given menu directory.
    pub fn new(menu_dir: PxeMenuDir) -> Self {
        PxeService::with_rom(menu_dir, BootRom::Grub4Dos)
    }

    /// A service distributing a specific boot ROM (the E9 compatibility
    /// experiment serves PXEGRUB here).
    pub fn with_rom(menu_dir: PxeMenuDir, rom: BootRom) -> Self {
        PxeService {
            menu_dir,
            rom,
            enabled: true,
            fetches: 0,
        }
    }

    /// The ROM this service serves.
    pub fn rom(&self) -> BootRom {
        self.rom
    }

    /// The standard v2 Eridani service: single-flag control, Linux first,
    /// menus matched to the Figure-14 disk layout.
    pub fn eridani_v2() -> Self {
        PxeService::new(PxeMenuDir::eridani_v2(OsKind::Linux))
    }

    /// Whether the service answers DHCP/TFTP requests.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable the service (head-node outage injection).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The menu directory (read access).
    pub fn menu_dir(&self) -> &PxeMenuDir {
        &self.menu_dir
    }

    /// The menu directory (write access — how the v2 controller flicks the
    /// target-OS flag).
    pub fn menu_dir_mut(&mut self) -> &mut PxeMenuDir {
        &mut self.menu_dir
    }

    /// Serve the menu for a node (counts as a TFTP fetch).
    ///
    /// Note: takes `&self` for the resolver's convenience; fetch counting
    /// therefore only happens through [`PxeService::serve_menu`].
    pub fn menu_for(&self, mac: &MacAddr) -> GrubConfig {
        self.menu_dir.menu_for(mac)
    }

    /// Serve the menu for a node, recording the fetch.
    pub fn serve_menu(&mut self, mac: &MacAddr) -> GrubConfig {
        self.fetches += 1;
        self.menu_dir.menu_for(mac)
    }

    /// TFTP fetches served so far.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_bootconf::grub4dos::ControlMode;
    use dualboot_bootconf::grub::BootTarget;

    #[test]
    fn eridani_default_is_linux_flag() {
        let s = PxeService::eridani_v2();
        assert!(s.is_enabled());
        assert_eq!(s.menu_dir().flag(), OsKind::Linux);
        assert_eq!(s.menu_dir().mode(), ControlMode::SingleFlag);
    }

    #[test]
    fn serve_counts_fetches() {
        let mut s = PxeService::eridani_v2();
        let mac = MacAddr::for_node(1);
        s.serve_menu(&mac);
        s.serve_menu(&mac);
        assert_eq!(s.fetches(), 2);
    }

    #[test]
    fn menu_follows_flag() {
        let mut s = PxeService::eridani_v2();
        let mac = MacAddr::for_node(2);
        s.menu_dir_mut().set_flag(OsKind::Windows);
        let menu = s.menu_for(&mac);
        assert_eq!(
            menu.default_entry().unwrap().boot_target(),
            BootTarget::Os(OsKind::Windows)
        );
    }

    #[test]
    fn disable_enable() {
        let mut s = PxeService::eridani_v2();
        s.set_enabled(false);
        assert!(!s.is_enabled());
        s.set_enabled(true);
        assert!(s.is_enabled());
    }
}
