//! Disks, partition tables and MBR boot code.
//!
//! The model keeps exactly the state the paper's failure modes hinge on:
//!
//! * the **MBR boot code** — GRUB stage 1, the Windows MBR, or nothing.
//!   Windows deployment `clean`s the disk or rewrites the MBR, destroying
//!   GRUB; this is the §IV.A motivation for moving to PXE in v2.
//! * the **partition table** — numbered partitions with a filesystem kind
//!   and typed content (Linux /boot with its GRUB menu, Linux root,
//!   Windows system, the shared FAT control partition).
//!
//! [`Disk::apply_diskpart`] executes a parsed `diskpart.txt` script with
//! real diskpart semantics: `clean` erases the table *and* boot code,
//! `create partition primary` allocates the next partition number,
//! `format` wipes content, `active` flips the boot flag.
//!
//! GRUB device numbering: `(hd0,P)` refers to partition number `P + 1`
//! (`sda2` is `(hd0,1)`), matching the paper's Figures 2 and 3.

use dualboot_bootconf::grub::GrubConfig;
use dualboot_bootconf::diskpart::{DiskpartCmd, DiskpartScript};
use crate::fatfs::FatFs;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What lives in the first 446 bytes of the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MbrCode {
    /// Zeroed / no boot code (fresh disk or after `clean`).
    None,
    /// GRUB stage 1 (installed by the Linux/OSCAR deployment).
    GrubStage1,
    /// The Windows MBR, which boots the active NTFS partition and knows
    /// nothing about GRUB.
    WindowsMbr,
}

/// Filesystem kind of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsKind {
    /// Allocated but never formatted.
    Unformatted,
    /// Linux ext3.
    Ext3,
    /// Windows NTFS.
    Ntfs,
    /// FAT (the shared control partition).
    Vfat,
    /// Linux swap.
    Swap,
}

/// Typed partition contents — what an OS or the middleware put there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionContent {
    /// Nothing installed (fresh or just formatted).
    Empty,
    /// A Linux `/boot` partition carrying the kernel, initrd and the GRUB
    /// menu that MBR-GRUB reads.
    LinuxBoot {
        /// The `menu.lst` GRUB stage 2 loads.
        menu_lst: GrubConfig,
    },
    /// The Linux root filesystem.
    LinuxRoot,
    /// An installed Windows system partition.
    WindowsSystem,
    /// The shared FAT control partition with its files.
    FatControl(FatFs),
}

/// One partition table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// 1-based partition number (`/dev/sdaN`). Numbers 1–4 are primary,
    /// 5+ logical, mirroring the paper's layouts.
    pub number: u32,
    /// Size in megabytes.
    pub size_mb: u64,
    /// Filesystem kind.
    pub fs: FsKind,
    /// Volume label (diskpart's `LABEL=`).
    pub label: String,
    /// Active (boot) flag.
    pub active: bool,
    /// What is installed here.
    pub content: PartitionContent,
}

/// Errors from disk operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// Referenced partition number does not exist.
    NoSuchPartition(u32),
    /// A partition with this number already exists.
    DuplicatePartition(u32),
    /// Requested size exceeds remaining capacity.
    CapacityExceeded {
        /// Megabytes asked for.
        requested_mb: u64,
        /// Megabytes actually available.
        free_mb: u64,
    },
    /// A diskpart command needed a selected partition but none was.
    NoPartitionSelected,
    /// A diskpart `select disk` referenced a different disk.
    WrongDisk(u32),
    /// `format` with an unsupported filesystem string.
    UnknownFs(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NoSuchPartition(n) => write!(f, "no partition {n}"),
            DiskError::DuplicatePartition(n) => write!(f, "partition {n} already exists"),
            DiskError::CapacityExceeded {
                requested_mb,
                free_mb,
            } => write!(f, "requested {requested_mb} MB but only {free_mb} MB free"),
            DiskError::NoPartitionSelected => write!(f, "no partition selected"),
            DiskError::WrongDisk(n) => write!(f, "script selected disk {n}, this is disk 0"),
            DiskError::UnknownFs(s) => write!(f, "unknown filesystem {s:?}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A single-disk model (Eridani nodes have one 250 GB disk).
///
/// ```
/// use dualboot_bootconf::diskpart::DiskpartScript;
/// use dualboot_hw::disk::{Disk, FsKind, MbrCode};
///
/// // Run the paper's Figure-10 deployment script against a blank disk:
/// let mut disk = Disk::eridani();
/// disk.apply_diskpart(&DiskpartScript::modified_v1(150_000)).unwrap();
/// assert_eq!(disk.partition(1).unwrap().size_mb, 150_000);
/// assert_eq!(disk.free_mb(), 100_000);          // room left for Linux
/// assert_eq!(disk.mbr(), MbrCode::None);        // `clean` wiped the MBR
/// assert_eq!(disk.partition(1).unwrap().fs, FsKind::Ntfs);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disk {
    capacity_mb: u64,
    mbr: MbrCode,
    partitions: Vec<Partition>,
}

impl Disk {
    /// A blank disk of the given capacity with no boot code.
    pub fn new(capacity_mb: u64) -> Self {
        Disk {
            capacity_mb,
            mbr: MbrCode::None,
            partitions: Vec::new(),
        }
    }

    /// The Eridani node disk: 250 GB.
    pub fn eridani() -> Self {
        Disk::new(250_000)
    }

    /// Total capacity in megabytes.
    pub fn capacity_mb(&self) -> u64 {
        self.capacity_mb
    }

    /// Megabytes consumed by existing partitions.
    pub fn used_mb(&self) -> u64 {
        self.partitions.iter().map(|p| p.size_mb).sum()
    }

    /// Remaining unallocated megabytes.
    pub fn free_mb(&self) -> u64 {
        self.capacity_mb.saturating_sub(self.used_mb())
    }

    /// Current MBR boot code.
    pub fn mbr(&self) -> MbrCode {
        self.mbr
    }

    /// Install boot code into the MBR (GRUB's `setup` or the Windows
    /// installer's MBR write).
    pub fn set_mbr(&mut self, code: MbrCode) {
        self.mbr = code;
    }

    /// All partitions in number order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Partition by 1-based number.
    pub fn partition(&self, number: u32) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.number == number)
    }

    /// Mutable partition by 1-based number.
    pub fn partition_mut(&mut self, number: u32) -> Option<&mut Partition> {
        self.partitions.iter_mut().find(|p| p.number == number)
    }

    /// Partition addressed by a GRUB device index (`(hd0,P)` → number P+1).
    pub fn partition_by_grub_index(&self, grub_index: u8) -> Option<&Partition> {
        self.partition(u32::from(grub_index) + 1)
    }

    /// Add a partition with an explicit number. Fails on duplicates or
    /// capacity overflow.
    pub fn add_partition(
        &mut self,
        number: u32,
        size_mb: u64,
        fs: FsKind,
        content: PartitionContent,
    ) -> Result<(), DiskError> {
        if self.partition(number).is_some() {
            return Err(DiskError::DuplicatePartition(number));
        }
        if size_mb > self.free_mb() {
            return Err(DiskError::CapacityExceeded {
                requested_mb: size_mb,
                free_mb: self.free_mb(),
            });
        }
        self.partitions.push(Partition {
            number,
            size_mb,
            fs,
            label: String::new(),
            active: false,
            content,
        });
        self.partitions.sort_by_key(|p| p.number);
        Ok(())
    }

    /// Remove a partition (its content is lost).
    pub fn remove_partition(&mut self, number: u32) -> Result<(), DiskError> {
        let before = self.partitions.len();
        self.partitions.retain(|p| p.number != number);
        if self.partitions.len() == before {
            Err(DiskError::NoSuchPartition(number))
        } else {
            Ok(())
        }
    }

    /// Wipe the partition table and the MBR boot code (diskpart `clean`).
    pub fn clean(&mut self) {
        self.partitions.clear();
        self.mbr = MbrCode::None;
    }

    /// First partition holding the FAT control filesystem, if any.
    pub fn fat_control(&self) -> Option<&FatFs> {
        self.partitions.iter().find_map(|p| match &p.content {
            PartitionContent::FatControl(fs) => Some(fs),
            _ => None,
        })
    }

    /// Mutable access to the FAT control filesystem, if present.
    pub fn fat_control_mut(&mut self) -> Option<&mut FatFs> {
        self.partitions.iter_mut().find_map(|p| match &mut p.content {
            PartitionContent::FatControl(fs) => Some(fs),
            _ => None,
        })
    }

    /// Does any partition carry an installed Linux system (boot + root)?
    pub fn has_linux(&self) -> bool {
        let boot = self
            .partitions
            .iter()
            .any(|p| matches!(p.content, PartitionContent::LinuxBoot { .. }));
        let root = self
            .partitions
            .iter()
            .any(|p| matches!(p.content, PartitionContent::LinuxRoot));
        boot && root
    }

    /// Does any partition carry an installed Windows system?
    pub fn has_windows(&self) -> bool {
        self.partitions
            .iter()
            .any(|p| matches!(p.content, PartitionContent::WindowsSystem))
    }

    /// Execute a `diskpart.txt` script with diskpart semantics. Commands
    /// run in order; the first error aborts (as diskpart does).
    pub fn apply_diskpart(&mut self, script: &DiskpartScript) -> Result<(), DiskError> {
        let mut selected: Option<u32> = None;
        let mut disk_selected = false;
        for cmd in &script.commands {
            match cmd {
                DiskpartCmd::SelectDisk(n) => {
                    if *n != 0 {
                        return Err(DiskError::WrongDisk(*n));
                    }
                    disk_selected = true;
                }
                DiskpartCmd::SelectPartition(n) => {
                    if self.partition(*n).is_none() {
                        return Err(DiskError::NoSuchPartition(*n));
                    }
                    selected = Some(*n);
                }
                DiskpartCmd::Clean => {
                    let _ = disk_selected; // diskpart requires it; we tolerate
                    self.clean();
                    selected = None;
                }
                DiskpartCmd::CreatePartitionPrimary { size_mb } => {
                    let size = size_mb.unwrap_or_else(|| self.free_mb());
                    // diskpart allocates the next free primary number (1-4)
                    let number = (1..=4)
                        .find(|n| self.partition(*n).is_none())
                        .ok_or(DiskError::DuplicatePartition(4))?;
                    self.add_partition(number, size, FsKind::Unformatted, PartitionContent::Empty)?;
                    selected = Some(number);
                }
                DiskpartCmd::AssignLetter(_) => {
                    // Drive letters have no effect on the model; require a
                    // selection like diskpart does.
                    if selected.is_none() {
                        return Err(DiskError::NoPartitionSelected);
                    }
                }
                DiskpartCmd::Format {
                    fs,
                    label,
                    quick: _,
                    override_: _,
                } => {
                    let n = selected.ok_or(DiskError::NoPartitionSelected)?;
                    let kind = match fs.as_str() {
                        "NTFS" => FsKind::Ntfs,
                        "FAT32" | "FAT" => FsKind::Vfat,
                        other => return Err(DiskError::UnknownFs(other.to_string())),
                    };
                    let p = self
                        .partition_mut(n)
                        .ok_or(DiskError::NoSuchPartition(n))?;
                    p.fs = kind;
                    p.label = label.clone();
                    p.content = PartitionContent::Empty; // format erases
                }
                DiskpartCmd::Active => {
                    let n = selected.ok_or(DiskError::NoPartitionSelected)?;
                    for p in &mut self.partitions {
                        p.active = p.number == n;
                    }
                }
                DiskpartCmd::Exit => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_bootconf::grub::eridani;

    #[test]
    fn blank_disk() {
        let d = Disk::eridani();
        assert_eq!(d.capacity_mb(), 250_000);
        assert_eq!(d.mbr(), MbrCode::None);
        assert!(d.partitions().is_empty());
        assert_eq!(d.free_mb(), 250_000);
    }

    #[test]
    fn add_and_lookup_partitions() {
        let mut d = Disk::new(1000);
        d.add_partition(2, 100, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        d.add_partition(1, 500, FsKind::Ntfs, PartitionContent::WindowsSystem)
            .unwrap();
        // sorted by number regardless of insertion order
        assert_eq!(d.partitions()[0].number, 1);
        assert_eq!(d.partition(2).unwrap().size_mb, 100);
        assert_eq!(d.used_mb(), 600);
        assert!(d.partition(3).is_none());
    }

    #[test]
    fn duplicate_and_overflow_rejected() {
        let mut d = Disk::new(1000);
        d.add_partition(1, 600, FsKind::Ntfs, PartitionContent::Empty)
            .unwrap();
        assert_eq!(
            d.add_partition(1, 10, FsKind::Ext3, PartitionContent::Empty),
            Err(DiskError::DuplicatePartition(1))
        );
        assert_eq!(
            d.add_partition(2, 500, FsKind::Ext3, PartitionContent::Empty),
            Err(DiskError::CapacityExceeded {
                requested_mb: 500,
                free_mb: 400
            })
        );
    }

    #[test]
    fn grub_index_maps_to_number_plus_one() {
        let mut d = Disk::new(1000);
        d.add_partition(2, 100, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        assert_eq!(d.partition_by_grub_index(1).unwrap().number, 2);
        assert!(d.partition_by_grub_index(0).is_none());
    }

    #[test]
    fn clean_wipes_table_and_mbr() {
        let mut d = Disk::new(1000);
        d.set_mbr(MbrCode::GrubStage1);
        d.add_partition(1, 100, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        d.clean();
        assert_eq!(d.mbr(), MbrCode::None);
        assert!(d.partitions().is_empty());
    }

    #[test]
    fn fig9_original_script_takes_whole_disk_and_kills_grub() {
        // The stock Windows HPC deployment against a disk that already has
        // Linux + GRUB: everything Linux is destroyed. This is the paper's
        // §III.C.2 motivation for patching diskpart.txt.
        let mut d = Disk::eridani();
        d.set_mbr(MbrCode::GrubStage1);
        d.add_partition(
            2,
            100,
            FsKind::Ext3,
            PartitionContent::LinuxBoot {
                menu_lst: eridani::menu_lst(),
            },
        )
        .unwrap();
        d.add_partition(7, 50_000, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        d.apply_diskpart(&DiskpartScript::original()).unwrap();
        assert_eq!(d.mbr(), MbrCode::None);
        assert!(!d.has_linux());
        let p1 = d.partition(1).unwrap();
        assert_eq!(p1.size_mb, 250_000);
        assert_eq!(p1.fs, FsKind::Ntfs);
        assert_eq!(p1.label, "Node");
        assert!(p1.active);
    }

    #[test]
    fn fig10_v1_script_reserves_150gb() {
        let mut d = Disk::eridani();
        d.apply_diskpart(&DiskpartScript::modified_v1(150_000)).unwrap();
        let p1 = d.partition(1).unwrap();
        assert_eq!(p1.size_mb, 150_000);
        assert_eq!(d.free_mb(), 100_000);
    }

    #[test]
    fn fig15_v2_reimage_preserves_linux_and_mbr() {
        // v2's reimage script formats partition 1 in place: the Linux
        // partitions and whatever MBR code exists survive.
        let mut d = Disk::eridani();
        d.set_mbr(MbrCode::GrubStage1);
        d.add_partition(1, 150_000, FsKind::Ntfs, PartitionContent::WindowsSystem)
            .unwrap();
        d.add_partition(
            2,
            100,
            FsKind::Ext3,
            PartitionContent::LinuxBoot {
                menu_lst: eridani::menu_lst(),
            },
        )
        .unwrap();
        d.add_partition(7, 50_000, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        d.apply_diskpart(&DiskpartScript::reimage_v2()).unwrap();
        assert_eq!(d.mbr(), MbrCode::GrubStage1);
        assert!(d.has_linux());
        // Windows content was erased by the format, ready for reinstall
        assert_eq!(d.partition(1).unwrap().content, PartitionContent::Empty);
        assert!(d.partition(1).unwrap().active);
    }

    #[test]
    fn reimage_script_fails_without_partition_1() {
        let mut d = Disk::eridani();
        assert_eq!(
            d.apply_diskpart(&DiskpartScript::reimage_v2()),
            Err(DiskError::NoSuchPartition(1))
        );
    }

    #[test]
    fn format_requires_selection() {
        let mut d = Disk::eridani();
        let script = DiskpartScript::parse("format FS=NTFS LABEL=\"X\"\n").unwrap();
        assert_eq!(d.apply_diskpart(&script), Err(DiskError::NoPartitionSelected));
    }

    #[test]
    fn wrong_disk_rejected() {
        let mut d = Disk::eridani();
        let script = DiskpartScript::parse("select disk 1\nclean\n").unwrap();
        assert_eq!(d.apply_diskpart(&script), Err(DiskError::WrongDisk(1)));
    }

    #[test]
    fn active_is_exclusive() {
        let mut d = Disk::new(1000);
        d.add_partition(1, 100, FsKind::Ntfs, PartitionContent::Empty)
            .unwrap();
        d.add_partition(2, 100, FsKind::Ext3, PartitionContent::Empty)
            .unwrap();
        let s1 = DiskpartScript::parse("select partition 1\nactive\n").unwrap();
        d.apply_diskpart(&s1).unwrap();
        assert!(d.partition(1).unwrap().active);
        let s2 = DiskpartScript::parse("select partition 2\nactive\n").unwrap();
        d.apply_diskpart(&s2).unwrap();
        assert!(!d.partition(1).unwrap().active);
        assert!(d.partition(2).unwrap().active);
    }

    #[test]
    fn fat_control_accessors() {
        let mut d = Disk::new(1000);
        let mut fs = FatFs::new();
        fs.write("controlmenu.lst", "default 0");
        d.add_partition(6, 64, FsKind::Vfat, PartitionContent::FatControl(fs))
            .unwrap();
        assert!(d.fat_control().unwrap().exists("controlmenu.lst"));
        d.fat_control_mut().unwrap().write("x", "y");
        assert_eq!(d.fat_control().unwrap().len(), 2);
    }

    #[test]
    fn has_linux_requires_boot_and_root() {
        let mut d = Disk::new(10_000);
        d.add_partition(
            2,
            100,
            FsKind::Ext3,
            PartitionContent::LinuxBoot {
                menu_lst: eridani::menu_lst(),
            },
        )
        .unwrap();
        assert!(!d.has_linux());
        d.add_partition(7, 1000, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        assert!(d.has_linux());
    }

    #[test]
    fn unknown_format_fs_rejected() {
        let mut d = Disk::new(1000);
        d.add_partition(1, 100, FsKind::Unformatted, PartitionContent::Empty)
            .unwrap();
        let script = DiskpartScript::parse("select partition 1\nformat FS=EXT4 LABEL=\"x\"\n")
            .unwrap();
        assert!(matches!(
            d.apply_diskpart(&script),
            Err(DiskError::UnknownFs(_))
        ));
    }
}
