//! A compute node: identity, disk, firmware setting and power state.
//!
//! Eridani's nodes are re-used laboratory machines with Intel Core™ 2 Quad
//! Q8200 processors (4 cores), one 250 GB disk and no hardware
//! virtualisation support (paper §II) — the whole reason the dual-boot
//! design exists. The node's state machine is deliberately small: the
//! *timing* of boots belongs to the cluster simulator; this type owns the
//! *correctness* of what an (instantaneous) boot would land on.

use crate::boot::{self, BootError, BootPath};
use crate::disk::Disk;
use crate::nic::NicModel;
use crate::pxe::PxeService;
use dualboot_bootconf::mac::MacAddr;
use dualboot_bootconf::os::OsKind;
use serde::{Deserialize, Serialize};

pub use dualboot_bootconf::node::NodeId;

/// What the firmware tries first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirmwareBootOrder {
    /// Boot straight from the local MBR (the v1 configuration).
    LocalDisk,
    /// Try PXE first, fall back to the local disk if nothing answers
    /// (the v2 configuration; PXELINUX/GRUB4DOS "quit PXE and lead to
    /// normal boot order" when the network path is unavailable, §IV.A.1).
    PxeFirst,
}

/// Node power/activity state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Powered off.
    Off,
    /// Mid-boot (between reboot issue and OS up).
    Booting,
    /// Up and running the given OS.
    Running(OsKind),
    /// Boot attempt failed; node is stuck at firmware/bootloader.
    Failed(BootError),
}

/// One Eridani compute node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeNode {
    /// 1-based node index (node01 … node16; scale sweeps go far wider).
    pub index: u32,
    /// Fully qualified hostname, e.g. `enode01.eridani.qgg.hud.ac.uk`.
    pub hostname: String,
    /// LAN-card MAC (keys the GRUB4DOS menu file).
    pub mac: MacAddr,
    /// LAN-card model. Eridani's re-used lab machines carry post-2005
    /// gigabit cards — the very reason PXEGRUB had to be abandoned.
    pub nic: NicModel,
    /// Processor cores (4 on Eridani's Q8200s).
    pub cores: u32,
    /// The node's single disk.
    pub disk: Disk,
    /// Firmware boot order.
    pub firmware: FirmwareBootOrder,
    /// Current power state.
    pub state: PowerState,
}

impl ComputeNode {
    /// A powered-off Eridani node with a blank 250 GB disk.
    pub fn eridani(index: u32, firmware: FirmwareBootOrder) -> Self {
        ComputeNode {
            index,
            hostname: format!("enode{index:02}.eridani.qgg.hud.ac.uk"),
            mac: MacAddr::for_node(index),
            nic: NicModel::RealtekR8168,
            cores: 4,
            disk: Disk::eridani(),
            firmware,
            state: PowerState::Off,
        }
    }

    /// The node's identity as a [`NodeId`] (1-based, hostname-aligned).
    pub fn id(&self) -> NodeId {
        NodeId(self.index)
    }

    /// The OS currently running, if any.
    pub fn running_os(&self) -> Option<OsKind> {
        match &self.state {
            PowerState::Running(os) => Some(*os),
            _ => None,
        }
    }

    /// True while a boot is in flight.
    pub fn is_booting(&self) -> bool {
        matches!(self.state, PowerState::Booting)
    }

    /// Begin a (re)boot: from any state, the node drops to `Booting`.
    /// Models both an orderly `sudo reboot` and a physical power reset —
    /// at the hardware level they look the same; the difference the paper
    /// cares about (v1 loses switches that were still being written) shows
    /// up in *when* the control files were mutated, not here.
    pub fn begin_boot(&mut self) {
        self.state = PowerState::Booting;
    }

    /// Complete a boot attempt: resolve the boot path against the current
    /// disk/PXE state and transition to `Running` or `Failed`.
    ///
    /// Returns what happened for the caller's bookkeeping.
    pub fn complete_boot(
        &mut self,
        pxe: Option<&PxeService>,
    ) -> Result<(OsKind, BootPath), BootError> {
        debug_assert!(
            matches!(self.state, PowerState::Booting),
            "complete_boot without begin_boot"
        );
        let result = match self.firmware {
            FirmwareBootOrder::LocalDisk => boot::resolve_local(&self.disk),
            FirmwareBootOrder::PxeFirst => {
                match boot::resolve_pxe(&self.disk, &self.mac, self.nic, pxe) {
                    // "Nothing answered" and "the ROM cannot drive this
                    // card" both quit PXE into the normal boot order
                    // (§IV.A.1); a *served* menu that fails to boot is a
                    // real failure.
                    Err(BootError::PxeNoAnswer | BootError::RomNicUnsupported(_)) => {
                        boot::resolve_local(&self.disk)
                    }
                    other => other,
                }
            }
        };
        match &result {
            Ok((os, _)) => self.state = PowerState::Running(*os),
            Err(e) => self.state = PowerState::Failed(e.clone()),
        }
        result
    }

    /// Power the node off.
    pub fn power_off(&mut self) {
        self.state = PowerState::Off;
    }

    /// Operator repair of the local boot chain: reinstall GRUB stage 1 in
    /// the MBR (the §III.C chore after a Windows reimage destroyed it).
    /// Only touches the MBR — partitions, control files and the firmware
    /// boot order are left as they are.
    pub fn repair_boot_chain(&mut self) {
        self.disk.set_mbr(crate::disk::MbrCode::GrubStage1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{FsKind, MbrCode, PartitionContent};
    use crate::fatfs::FatFs;
    use dualboot_bootconf::grub::eridani as grub_eridani;
    use dualboot_bootconf::grub4dos::{ControlMode, PxeMenuDir};

    fn installed_node(firmware: FirmwareBootOrder) -> ComputeNode {
        let mut n = ComputeNode::eridani(1, firmware);
        n.disk.set_mbr(MbrCode::GrubStage1);
        n.disk
            .add_partition(1, 150_000, FsKind::Ntfs, PartitionContent::WindowsSystem)
            .unwrap();
        n.disk
            .add_partition(
                2,
                100,
                FsKind::Ext3,
                PartitionContent::LinuxBoot {
                    menu_lst: grub_eridani::menu_lst(),
                },
            )
            .unwrap();
        let mut fat = FatFs::new();
        fat.write(
            "controlmenu.lst",
            grub_eridani::controlmenu(OsKind::Linux).emit(),
        );
        n.disk
            .add_partition(6, 64, FsKind::Vfat, PartitionContent::FatControl(fat))
            .unwrap();
        n.disk
            .add_partition(7, 50_000, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        n
    }

    #[test]
    fn hostname_and_mac_follow_index() {
        let n = ComputeNode::eridani(7, FirmwareBootOrder::LocalDisk);
        assert_eq!(n.hostname, "enode07.eridani.qgg.hud.ac.uk");
        assert_eq!(n.mac, MacAddr::for_node(7));
        assert_eq!(n.cores, 4);
        assert_eq!(n.state, PowerState::Off);
    }

    #[test]
    fn local_boot_cycle() {
        let mut n = installed_node(FirmwareBootOrder::LocalDisk);
        n.begin_boot();
        assert!(n.is_booting());
        let (os, path) = n.complete_boot(None).unwrap();
        assert_eq!(os, OsKind::Linux);
        assert_eq!(path, BootPath::LocalGrub);
        assert_eq!(n.running_os(), Some(OsKind::Linux));
    }

    #[test]
    fn failed_boot_records_error() {
        let mut n = ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk);
        n.begin_boot();
        assert!(n.complete_boot(None).is_err());
        assert!(matches!(n.state, PowerState::Failed(BootError::NoBootCode)));
        assert_eq!(n.running_os(), None);
    }

    #[test]
    fn pxe_first_uses_head_node_flag() {
        let mut n = installed_node(FirmwareBootOrder::PxeFirst);
        let mut svc = PxeService::new(PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Windows));
        n.begin_boot();
        let (os, path) = n.complete_boot(Some(&svc)).unwrap();
        assert_eq!((os, path), (OsKind::Windows, BootPath::Pxe));
        // flip the flag; next boot follows it
        svc.menu_dir_mut().set_flag(OsKind::Linux);
        n.begin_boot();
        assert_eq!(n.complete_boot(Some(&svc)).unwrap().0, OsKind::Linux);
    }

    #[test]
    fn pxe_first_falls_back_to_local_when_unanswered() {
        let mut n = installed_node(FirmwareBootOrder::PxeFirst);
        n.begin_boot();
        let (os, path) = n.complete_boot(None).unwrap();
        assert_eq!(os, OsKind::Linux); // controlmenu targets Linux
        assert_eq!(path, BootPath::LocalGrub);
    }

    #[test]
    fn pxe_menu_failure_does_not_fall_back() {
        // The head node answers but the menu's OS is not installed: that is
        // a real boot failure, not a fallback case.
        let mut n = installed_node(FirmwareBootOrder::PxeFirst);
        n.disk.partition_mut(1).unwrap().content = PartitionContent::Empty;
        let svc = PxeService::new(PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Windows));
        n.begin_boot();
        assert_eq!(
            n.complete_boot(Some(&svc)),
            Err(BootError::WindowsPartitionMissing(0))
        );
        assert!(matches!(n.state, PowerState::Failed(_)));
    }

    #[test]
    fn pxegrub_rom_cannot_drive_modern_nic() {
        // The §IV.A.1 dead end: the PXEGRUB prototype works in VMs (old
        // emulated NICs) but modern cards fall back to local boot and
        // escape head-node control.
        use crate::nic::{BootRom, NicModel};
        let dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Windows);
        let svc = crate::pxe::PxeService::with_rom(dir, BootRom::PxeGrub097);

        let mut modern = installed_node(FirmwareBootOrder::PxeFirst);
        modern.nic = NicModel::RealtekR8168;
        modern.begin_boot();
        let (os, path) = modern.complete_boot(Some(&svc)).unwrap();
        // fell back to the local chain, ignoring the Windows flag
        assert_eq!((os, path), (OsKind::Linux, BootPath::LocalGrub));

        let mut vm = installed_node(FirmwareBootOrder::PxeFirst);
        vm.nic = NicModel::VirtualEmulated;
        vm.begin_boot();
        let (os, path) = vm.complete_boot(Some(&svc)).unwrap();
        assert_eq!((os, path), (OsKind::Windows, BootPath::Pxe));
    }

    #[test]
    fn grub4dos_rom_drives_modern_nic() {
        use crate::nic::NicModel;
        let svc = crate::pxe::PxeService::new(PxeMenuDir::new(
            ControlMode::SingleFlag,
            OsKind::Windows,
        ));
        let mut n = installed_node(FirmwareBootOrder::PxeFirst);
        n.nic = NicModel::RealtekR8168;
        n.begin_boot();
        assert_eq!(n.complete_boot(Some(&svc)).unwrap().1, BootPath::Pxe);
    }

    #[test]
    fn power_off_from_running() {
        let mut n = installed_node(FirmwareBootOrder::LocalDisk);
        n.begin_boot();
        n.complete_boot(None).unwrap();
        n.power_off();
        assert_eq!(n.state, PowerState::Off);
    }
}
