//! Network interface card models and driver eras.
//!
//! §IV.A.1 of the paper contains a whole sub-story about NIC drivers:
//! the first v2 prototype used **PXEGRUB** (GRUB 0.97 compiled with
//! `--enable-diskless --enable-<suited NIC drivers>`), which "proved the
//! practicality ... in the virtualised environment" — but "due to the
//! discontinued development of GRUB 0.97, new models of LAN cards are not
//! supported. Therefore, we needed to change our approach" to GRUB4DOS,
//! whose PXE ROM drives the card through the firmware's own PXE/UNDI
//! stack and is therefore NIC-agnostic.
//!
//! This module models just enough of that reality for the compatibility
//! experiment (E9): cards are either *legacy* (drivers existed before
//! GRUB 0.97 development stopped in 2005) or *modern* (they did not).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Driver-era classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NicEra {
    /// A driver shipped in GRUB 0.97's netboot tree.
    Legacy,
    /// Released after GRUB 0.97 development stopped; no PXEGRUB driver
    /// will ever exist.
    Modern,
}

/// Concrete card models seen in 2000s-era laboratory PCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NicModel {
    /// Realtek RTL8139 (ubiquitous 100 Mb card; legacy driver exists).
    Rtl8139,
    /// Intel e100 (100 Mb; legacy driver exists).
    IntelE100,
    /// Intel e1000 (early gigabit; legacy driver exists).
    IntelE1000,
    /// Broadcom tg3-family gigabit (late; no GRUB 0.97 driver).
    BroadcomTg3,
    /// Realtek RTL8168 gigabit (the "new models of LAN cards" of the
    /// paper's re-used lab machines; no GRUB 0.97 driver).
    RealtekR8168,
    /// A virtual machine's emulated NIC (VMs emulate old cards, which is
    /// why the paper's VM tests of PXEGRUB passed).
    VirtualEmulated,
}

impl NicModel {
    /// All models, for sweeps.
    pub const ALL: [NicModel; 6] = [
        NicModel::Rtl8139,
        NicModel::IntelE100,
        NicModel::IntelE1000,
        NicModel::BroadcomTg3,
        NicModel::RealtekR8168,
        NicModel::VirtualEmulated,
    ];

    /// Which driver era the card belongs to.
    pub fn era(self) -> NicEra {
        match self {
            NicModel::Rtl8139
            | NicModel::IntelE100
            | NicModel::IntelE1000
            | NicModel::VirtualEmulated => NicEra::Legacy,
            NicModel::BroadcomTg3 | NicModel::RealtekR8168 => NicEra::Modern,
        }
    }
}

impl fmt::Display for NicModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NicModel::Rtl8139 => "RTL8139",
            NicModel::IntelE100 => "Intel e100",
            NicModel::IntelE1000 => "Intel e1000",
            NicModel::BroadcomTg3 => "Broadcom tg3",
            NicModel::RealtekR8168 => "RTL8168",
            NicModel::VirtualEmulated => "VM emulated",
        };
        write!(f, "{name}")
    }
}

/// The network boot ROM served to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootRom {
    /// PXEGRUB: GRUB 0.97 `--enable-diskless` with compiled-in NIC
    /// drivers. Only drives [`NicEra::Legacy`] cards.
    PxeGrub097,
    /// GRUB4DOS's PXE ROM: rides the firmware's PXE/UNDI stack, so it
    /// works with any card whose firmware can PXE at all.
    Grub4Dos,
}

impl BootRom {
    /// Can this ROM drive the given card?
    pub fn supports(self, nic: NicModel) -> bool {
        match self {
            BootRom::PxeGrub097 => nic.era() == NicEra::Legacy,
            BootRom::Grub4Dos => true,
        }
    }
}

impl fmt::Display for BootRom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootRom::PxeGrub097 => write!(f, "PXEGRUB (GRUB 0.97)"),
            BootRom::Grub4Dos => write!(f, "GRUB4DOS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eras_match_history() {
        assert_eq!(NicModel::Rtl8139.era(), NicEra::Legacy);
        assert_eq!(NicModel::IntelE1000.era(), NicEra::Legacy);
        assert_eq!(NicModel::RealtekR8168.era(), NicEra::Modern);
        assert_eq!(NicModel::BroadcomTg3.era(), NicEra::Modern);
    }

    #[test]
    fn pxegrub_only_drives_legacy_cards() {
        for nic in NicModel::ALL {
            assert_eq!(
                BootRom::PxeGrub097.supports(nic),
                nic.era() == NicEra::Legacy,
                "{nic}"
            );
        }
    }

    #[test]
    fn grub4dos_drives_everything() {
        assert!(NicModel::ALL.iter().all(|n| BootRom::Grub4Dos.supports(*n)));
    }

    #[test]
    fn vm_tests_pass_but_real_hardware_fails() {
        // The paper's trap, as a test: PXEGRUB works in the VM...
        assert!(BootRom::PxeGrub097.supports(NicModel::VirtualEmulated));
        // ...and fails on the lab machines' newer cards.
        assert!(!BootRom::PxeGrub097.supports(NicModel::RealtekR8168));
    }
}
