//! The boot-path resolver: firmware → (PXE | MBR) → bootloader → OS.
//!
//! This is where the v1/v2 difference of the paper becomes executable.
//! Resolution walks the same chain a real node walks:
//!
//! * **Local path (v1)**: the MBR's code runs. GRUB stage 1 loads the
//!   `menu.lst` from the Linux `/boot` partition; its only entry redirects
//!   (`configfile`) to `controlmenu.lst` on the FAT partition (Figure 2);
//!   *that* file's default entry boots Linux (kernel at `root=/dev/sdaN`)
//!   or chainloads the Windows partition (Figure 3). A Windows MBR instead
//!   boots the active NTFS partition directly and never consults GRUB —
//!   which is why a Windows reimage strands Linux in v1.
//! * **Network path (v2)**: the firmware PXE-boots, the GRUB4DOS ROM
//!   fetches the menu for the node's MAC from the head node, and the menu
//!   boots a *local* partition. The local MBR is never read.
//!
//! Every dead end is a typed [`BootError`], so tests and fault-injection
//! experiments can assert exactly *how* a node fails to boot.

use crate::disk::{Disk, FsKind, MbrCode, PartitionContent};
use crate::nic::NicModel;
use crate::pxe::PxeService;
use dualboot_bootconf::grub::{BootTarget, EntryCommand, GrubConfig, GrubEntry};
use dualboot_bootconf::mac::MacAddr;
use dualboot_bootconf::os::OsKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How far the boot attempt got before failing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootError {
    /// MBR has no boot code (fresh disk, or after diskpart `clean`).
    NoBootCode,
    /// GRUB stage 1 ran but no partition carries a `/boot` with a menu.
    GrubMenuMissing,
    /// A `configfile` redirect pointed at a file that does not exist on the
    /// FAT partition (or there is no FAT partition).
    RedirectTargetMissing(String),
    /// Config redirects formed a loop (or exceeded the chain limit).
    RedirectLoop,
    /// The selected menu entry has no recognisable boot command.
    UndefinedEntry(String),
    /// The default index points past the end of the menu.
    DefaultOutOfRange(u32),
    /// A kernel's `root=/dev/sdaN` device is missing or has no Linux root.
    LinuxRootMissing(u32),
    /// A chainload target partition is missing or not a Windows system.
    WindowsPartitionMissing(u8),
    /// The Windows MBR found no active NTFS partition with a system on it.
    NoActiveWindows,
    /// Firmware was set to PXE but no PXE service answered (head node down
    /// or service disabled).
    PxeNoAnswer,
    /// The served boot ROM has no driver for the node's LAN card (the
    /// PXEGRUB/GRUB-0.97 dead end of §IV.A.1).
    RomNicUnsupported(NicModel),
    /// A config file on the FAT partition failed to parse.
    ConfigUnparsable(String),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::NoBootCode => write!(f, "MBR contains no boot code"),
            BootError::GrubMenuMissing => write!(f, "GRUB found no menu.lst on any partition"),
            BootError::RedirectTargetMissing(p) => {
                write!(f, "configfile target {p:?} not found on control partition")
            }
            BootError::RedirectLoop => write!(f, "configfile redirect loop"),
            BootError::UndefinedEntry(t) => write!(f, "menu entry {t:?} has no boot command"),
            BootError::DefaultOutOfRange(i) => write!(f, "default entry {i} out of range"),
            BootError::LinuxRootMissing(n) => {
                write!(f, "kernel root device /dev/sda{n} missing or not a Linux root")
            }
            BootError::WindowsPartitionMissing(i) => {
                write!(f, "chainload target (hd0,{i}) missing or not Windows")
            }
            BootError::NoActiveWindows => {
                write!(f, "Windows MBR found no active NTFS system partition")
            }
            BootError::PxeNoAnswer => write!(f, "PXE boot: no DHCP/TFTP answer"),
            BootError::RomNicUnsupported(nic) => {
                write!(f, "boot ROM has no driver for {nic}")
            }
            BootError::ConfigUnparsable(p) => write!(f, "config file {p:?} unparsable"),
        }
    }
}

impl std::error::Error for BootError {}

/// Which path resolved the boot (reported alongside the OS for traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootPath {
    /// Local MBR → GRUB → (redirect) → entry.
    LocalGrub,
    /// Local Windows MBR → active partition.
    LocalWindowsMbr,
    /// PXE → GRUB4DOS menu from the head node.
    Pxe,
}

/// Maximum `configfile` redirects followed before declaring a loop.
const MAX_REDIRECTS: usize = 4;

/// Resolve what a node boots through its **local disk** (the v1 path).
pub fn resolve_local(disk: &Disk) -> Result<(OsKind, BootPath), BootError> {
    match disk.mbr() {
        MbrCode::None => Err(BootError::NoBootCode),
        MbrCode::WindowsMbr => {
            let ok = disk.partitions().iter().any(|p| {
                p.active
                    && p.fs == FsKind::Ntfs
                    && matches!(p.content, PartitionContent::WindowsSystem)
            });
            if ok {
                Ok((OsKind::Windows, BootPath::LocalWindowsMbr))
            } else {
                Err(BootError::NoActiveWindows)
            }
        }
        MbrCode::GrubStage1 => {
            let menu = disk
                .partitions()
                .iter()
                .find_map(|p| match &p.content {
                    PartitionContent::LinuxBoot { menu_lst } => Some(menu_lst),
                    _ => None,
                })
                .ok_or(BootError::GrubMenuMissing)?;
            let os = resolve_menu(disk, menu, 0)?;
            Ok((os, BootPath::LocalGrub))
        }
    }
}

/// Resolve what a node boots through **PXE** (the v2 path). `pxe` is the
/// head node's boot service; `None` models an unreachable head node.
pub fn resolve_pxe(
    disk: &Disk,
    mac: &MacAddr,
    nic: NicModel,
    pxe: Option<&PxeService>,
) -> Result<(OsKind, BootPath), BootError> {
    let service = pxe.filter(|s| s.is_enabled()).ok_or(BootError::PxeNoAnswer)?;
    if !service.rom().supports(nic) {
        return Err(BootError::RomNicUnsupported(nic));
    }
    let menu = service.menu_for(mac);
    let os = resolve_menu(disk, &menu, 0)?;
    Ok((os, BootPath::Pxe))
}

/// Follow a GRUB menu's default entry to an OS, chasing `configfile`
/// redirects through the FAT control partition. If the default entry
/// fails and the menu carries a `fallback=N` directive, GRUB retries
/// entry N — modelled faithfully (one fallback level, as GRUB legacy).
fn resolve_menu(disk: &Disk, menu: &GrubConfig, depth: usize) -> Result<OsKind, BootError> {
    let primary = resolve_menu_entry(disk, menu, menu.default_index(), depth);
    match primary {
        Ok(os) => Ok(os),
        Err(e) => {
            let fallback = menu.header.iter().find_map(|h| match h {
                dualboot_bootconf::grub::HeaderDirective::Fallback(n) => Some(*n),
                _ => None,
            });
            match fallback {
                Some(n) if n != menu.default_index() => {
                    resolve_menu_entry(disk, menu, n, depth).map_err(|_| e)
                }
                _ => Err(e),
            }
        }
    }
}

/// Resolve one specific entry of a menu.
fn resolve_menu_entry(
    disk: &Disk,
    menu: &GrubConfig,
    idx: u32,
    depth: usize,
) -> Result<OsKind, BootError> {
    if depth > MAX_REDIRECTS {
        return Err(BootError::RedirectLoop);
    }
    let entry = menu
        .entries
        .get(idx as usize)
        .ok_or(BootError::DefaultOutOfRange(idx))?;
    match entry.boot_target() {
        BootTarget::Redirect(path) => {
            let fat = disk
                .fat_control()
                .ok_or_else(|| BootError::RedirectTargetMissing(path.clone()))?;
            let name = path.trim_start_matches('/');
            let text = fat
                .read(name)
                .ok_or_else(|| BootError::RedirectTargetMissing(path.clone()))?;
            let next = GrubConfig::parse(text)
                .map_err(|_| BootError::ConfigUnparsable(path.clone()))?;
            resolve_menu(disk, &next, depth + 1)
        }
        BootTarget::Os(OsKind::Linux) => {
            verify_linux_bootable(disk, entry)?;
            Ok(OsKind::Linux)
        }
        BootTarget::Os(OsKind::Windows) => {
            verify_windows_bootable(disk, entry)?;
            Ok(OsKind::Windows)
        }
        BootTarget::Undefined => Err(BootError::UndefinedEntry(entry.title.clone())),
    }
}

/// Check that the kernel's `root=/dev/sdaN` partition exists and carries a
/// Linux root filesystem.
fn verify_linux_bootable(disk: &Disk, entry: &GrubEntry) -> Result<(), BootError> {
    for c in &entry.commands {
        if let EntryCommand::Kernel { args, .. } = c {
            for a in args {
                if let Some(dev) = a.strip_prefix("root=/dev/sda") {
                    if let Ok(n) = dev.parse::<u32>() {
                        let ok = disk
                            .partition(n)
                            .map(|p| matches!(p.content, PartitionContent::LinuxRoot))
                            .unwrap_or(false);
                        return if ok {
                            Ok(())
                        } else {
                            Err(BootError::LinuxRootMissing(n))
                        };
                    }
                }
            }
        }
    }
    // No root= argument: accept if the disk has a Linux install at all.
    if disk.has_linux() {
        Ok(())
    } else {
        Err(BootError::LinuxRootMissing(0))
    }
}

/// Check that the chainload target is an installed Windows partition.
fn verify_windows_bootable(disk: &Disk, entry: &GrubEntry) -> Result<(), BootError> {
    let target = entry.commands.iter().find_map(|c| match c {
        EntryCommand::RootNoVerify(d) | EntryCommand::Root(d) => Some(d.partition),
        _ => None,
    });
    let grub_index = target.unwrap_or(0);
    let ok = disk
        .partition_by_grub_index(grub_index)
        .map(|p| {
            p.fs == FsKind::Ntfs && matches!(p.content, PartitionContent::WindowsSystem)
        })
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err(BootError::WindowsPartitionMissing(grub_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fatfs::FatFs;
    use dualboot_bootconf::grub::eridani;
    use dualboot_bootconf::grub4dos::{ControlMode, PxeMenuDir};

    /// A fully installed v1 Eridani node disk: Windows on sda1, Linux
    /// /boot on sda2 (with the Figure-2 redirect menu), swap sda5, FAT
    /// control on sda6 holding controlmenu.lst targeting `os`, root sda7.
    fn v1_disk(control_target: OsKind) -> Disk {
        let mut d = Disk::eridani();
        d.set_mbr(MbrCode::GrubStage1);
        d.add_partition(1, 150_000, FsKind::Ntfs, PartitionContent::WindowsSystem)
            .unwrap();
        d.add_partition(
            2,
            100,
            FsKind::Ext3,
            PartitionContent::LinuxBoot {
                menu_lst: eridani::menu_lst(),
            },
        )
        .unwrap();
        let mut fat = FatFs::new();
        fat.write(
            "controlmenu.lst",
            eridani::controlmenu(control_target).emit(),
        );
        fat.write(
            "controlmenu_to_linux.lst",
            eridani::controlmenu(OsKind::Linux).emit(),
        );
        fat.write(
            "controlmenu_to_windows.lst",
            eridani::controlmenu(OsKind::Windows).emit(),
        );
        d.add_partition(5, 512, FsKind::Swap, PartitionContent::Empty)
            .unwrap();
        d.add_partition(6, 64, FsKind::Vfat, PartitionContent::FatControl(fat))
            .unwrap();
        d.add_partition(7, 50_000, FsKind::Ext3, PartitionContent::LinuxRoot)
            .unwrap();
        d
    }

    #[test]
    fn v1_boots_linux_via_redirect() {
        let d = v1_disk(OsKind::Linux);
        assert_eq!(
            resolve_local(&d).unwrap(),
            (OsKind::Linux, BootPath::LocalGrub)
        );
    }

    #[test]
    fn v1_boots_windows_via_redirect() {
        let d = v1_disk(OsKind::Windows);
        assert_eq!(
            resolve_local(&d).unwrap(),
            (OsKind::Windows, BootPath::LocalGrub)
        );
    }

    #[test]
    fn v1_switch_by_rename_changes_boot() {
        // The exact file operation the paper's batch scripts perform.
        let mut d = v1_disk(OsKind::Linux);
        let fat = d.fat_control_mut().unwrap();
        assert!(fat.rename("controlmenu_to_windows.lst", "controlmenu.lst"));
        assert_eq!(resolve_local(&d).unwrap().0, OsKind::Windows);
    }

    #[test]
    fn windows_reimage_strands_linux_in_v1() {
        // Figure 9/10 scripts `clean` → MBR boot code gone → node unbootable
        // without a full Linux reinstall: the §IV.A failure.
        let mut d = v1_disk(OsKind::Linux);
        d.apply_diskpart(&dualboot_bootconf::diskpart::DiskpartScript::modified_v1(
            150_000,
        ))
        .unwrap();
        assert_eq!(resolve_local(&d), Err(BootError::NoBootCode));
    }

    #[test]
    fn windows_mbr_boots_active_partition_ignoring_grub() {
        let mut d = v1_disk(OsKind::Linux);
        d.set_mbr(MbrCode::WindowsMbr);
        d.partition_mut(1).unwrap().active = true;
        // controlmenu still says Linux, but the Windows MBR never reads it
        assert_eq!(
            resolve_local(&d).unwrap(),
            (OsKind::Windows, BootPath::LocalWindowsMbr)
        );
    }

    #[test]
    fn windows_mbr_without_system_fails() {
        let mut d = Disk::eridani();
        d.set_mbr(MbrCode::WindowsMbr);
        assert_eq!(resolve_local(&d), Err(BootError::NoActiveWindows));
    }

    #[test]
    fn missing_controlmenu_is_reported() {
        let mut d = v1_disk(OsKind::Linux);
        d.fat_control_mut().unwrap().remove("controlmenu.lst");
        assert_eq!(
            resolve_local(&d),
            Err(BootError::RedirectTargetMissing("/controlmenu.lst".into()))
        );
    }

    #[test]
    fn garbage_controlmenu_is_reported() {
        let mut d = v1_disk(OsKind::Linux);
        d.fat_control_mut()
            .unwrap()
            .write("controlmenu.lst", "!! not a grub file !!");
        assert_eq!(
            resolve_local(&d),
            Err(BootError::ConfigUnparsable("/controlmenu.lst".into()))
        );
    }

    #[test]
    fn redirect_loop_detected() {
        let mut d = v1_disk(OsKind::Linux);
        // controlmenu.lst that redirects to itself
        let mut looping = eridani::menu_lst();
        looping.entries[0].commands[1] =
            EntryCommand::ConfigFile("/controlmenu.lst".to_string());
        d.fat_control_mut()
            .unwrap()
            .write("controlmenu.lst", looping.emit());
        assert_eq!(resolve_local(&d), Err(BootError::RedirectLoop));
    }

    #[test]
    fn linux_entry_with_missing_root_partition_fails() {
        let mut d = v1_disk(OsKind::Linux);
        d.remove_partition(7).unwrap();
        assert_eq!(resolve_local(&d), Err(BootError::LinuxRootMissing(7)));
    }

    #[test]
    fn windows_entry_with_erased_partition_fails() {
        let mut d = v1_disk(OsKind::Windows);
        d.partition_mut(1).unwrap().content = PartitionContent::Empty;
        assert_eq!(
            resolve_local(&d),
            Err(BootError::WindowsPartitionMissing(0))
        );
    }

    #[test]
    fn pxe_boots_flag_os_regardless_of_local_mbr() {
        // v2: even a node whose MBR was destroyed by a Windows reimage
        // boots correctly, because the path never touches the MBR.
        let mut d = v1_disk(OsKind::Linux);
        d.set_mbr(MbrCode::None);
        let service = PxeService::new(PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux));
        let mac = MacAddr::for_node(1);
        assert_eq!(
            resolve_pxe(&d, &mac, NicModel::RealtekR8168, Some(&service)).unwrap(),
            (OsKind::Linux, BootPath::Pxe)
        );
    }

    #[test]
    fn pxe_follows_flag_flips() {
        let d = v1_disk(OsKind::Linux);
        let mut service =
            PxeService::new(PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux));
        let mac = MacAddr::for_node(3);
        assert_eq!(resolve_pxe(&d, &mac, NicModel::RealtekR8168, Some(&service)).unwrap().0, OsKind::Linux);
        service.menu_dir_mut().set_flag(OsKind::Windows);
        assert_eq!(
            resolve_pxe(&d, &mac, NicModel::RealtekR8168, Some(&service)).unwrap().0,
            OsKind::Windows
        );
    }

    #[test]
    fn pxe_without_service_fails() {
        let d = v1_disk(OsKind::Linux);
        let mac = MacAddr::for_node(1);
        assert_eq!(resolve_pxe(&d, &mac, NicModel::RealtekR8168, None), Err(BootError::PxeNoAnswer));
        let mut off = PxeService::new(PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux));
        off.set_enabled(false);
        assert_eq!(
            resolve_pxe(&d, &mac, NicModel::RealtekR8168, Some(&off)),
            Err(BootError::PxeNoAnswer)
        );
    }

    #[test]
    fn fallback_entry_rescues_a_broken_default() {
        // default points at the Windows entry but the Windows partition is
        // wiped; fallback=0 (the Linux entry) saves the boot.
        let mut d = v1_disk(OsKind::Windows);
        d.partition_mut(1).unwrap().content = PartitionContent::Empty;
        // inject a fallback directive into controlmenu.lst
        let mut menu = eridani::controlmenu(OsKind::Windows);
        menu.header
            .push(dualboot_bootconf::grub::HeaderDirective::Fallback(0));
        d.fat_control_mut()
            .unwrap()
            .write("controlmenu.lst", menu.emit());
        assert_eq!(resolve_local(&d).unwrap().0, OsKind::Linux);
    }

    #[test]
    fn fallback_reports_the_primary_error_when_it_also_fails() {
        let mut d = v1_disk(OsKind::Windows);
        d.partition_mut(1).unwrap().content = PartitionContent::Empty;
        d.remove_partition(7).unwrap(); // Linux root gone too
        let mut menu = eridani::controlmenu(OsKind::Windows);
        menu.header
            .push(dualboot_bootconf::grub::HeaderDirective::Fallback(0));
        d.fat_control_mut()
            .unwrap()
            .write("controlmenu.lst", menu.emit());
        // both entries dead: the *primary* failure is what surfaces
        assert_eq!(
            resolve_local(&d),
            Err(BootError::WindowsPartitionMissing(0))
        );
    }

    #[test]
    fn fallback_to_self_is_ignored() {
        let mut d = v1_disk(OsKind::Windows);
        d.partition_mut(1).unwrap().content = PartitionContent::Empty;
        let mut menu = eridani::controlmenu(OsKind::Windows);
        menu.header
            .push(dualboot_bootconf::grub::HeaderDirective::Fallback(1)); // = default
        d.fat_control_mut()
            .unwrap()
            .write("controlmenu.lst", menu.emit());
        assert_eq!(
            resolve_local(&d),
            Err(BootError::WindowsPartitionMissing(0))
        );
    }

    #[test]
    fn blank_disk_cannot_boot() {
        let d = Disk::eridani();
        assert_eq!(resolve_local(&d), Err(BootError::NoBootCode));
    }

    #[test]
    fn grub_without_menu_fails() {
        let mut d = Disk::eridani();
        d.set_mbr(MbrCode::GrubStage1);
        assert_eq!(resolve_local(&d), Err(BootError::GrubMenuMissing));
    }
}
