#![warn(missing_docs)]

//! # dualboot-hw — the hardware substrate of the Eridani cluster
//!
//! The paper's middleware manipulates *hardware-level* state: MBR boot
//! code, partition tables, a shared FAT partition, PXE firmware. None of
//! that exists in this reproduction's environment, so this crate models it
//! as explicit state machines — close enough to the metal that the failure
//! the paper reports ("reimaging of Windows partitions always rewrites MBR
//! and damages GRUB which boots Linux", §IV.A) *emerges from the model*
//! instead of being hard-coded.
//!
//! * [`disk`] — disks, partition tables, MBR boot code, and execution of
//!   `diskpart.txt` scripts against them.
//! * [`fatfs`] — the tiny shared FAT filesystem holding `controlmenu.lst`
//!   (the v1 control channel).
//! * [`boot`] — the boot-path resolver: firmware → (PXE ROM | MBR) →
//!   bootloader → OS, with every failure mode surfaced as a typed error.
//! * [`node`] — a compute node: MAC, disk, firmware setting, power state.
//! * [`nic`] — LAN-card models and the PXEGRUB-vs-GRUB4DOS driver-era
//!   compatibility that forced the paper's §IV.A.1 redesign.
//! * [`pxe`] — the head node's DHCP/TFTP boot service wrapping the
//!   GRUB4DOS menu directory.

pub mod boot;
pub mod disk;
pub mod fatfs;
pub mod nic;
pub mod node;
pub mod pxe;

pub use boot::{BootError, BootPath};
pub use nic::{BootRom, NicEra, NicModel};
pub use disk::{Disk, FsKind, MbrCode, Partition, PartitionContent};
pub use node::{ComputeNode, FirmwareBootOrder, NodeId, PowerState};
pub use pxe::PxeService;
