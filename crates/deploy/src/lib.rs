#![warn(missing_docs)]

//! # dualboot-deploy — node deployment and reimaging
//!
//! The biggest operational difference between dualboot-oscar v1.0 and v2.0
//! is not the control loop — it is **deployment**. The paper (§III.C,
//! §IV.B) describes:
//!
//! * **v1**: every OSCAR image rebuild requires four manual edits
//!   (reserving Windows + FAT partitions in `ide.disk`, `mkpart` →
//!   `mkpartfs`, rsync FAT flags, fstab/unmount cleanup), Windows must be
//!   installed *first* because its deployment `clean`s the disk, and every
//!   Windows reinstall therefore forces a Linux reinstall.
//! * **v2**: a one-time patch to systemimager/systeminstaller adds the
//!   `skip` partition label; thereafter "Windows partition and OSCAR
//!   partition can be individually reimaged without corrupting each
//!   other".
//!
//! This crate executes both flows against the `dualboot-hw` disk model and
//! *measures* them (experiment E4): manual steps, collateral reinstalls,
//! and wall-clock deployment time.
//!
//! * [`oscar`] — the systemimager/systeminstaller-like Linux deployer.
//! * [`windows`] — the Windows-HPC-deployment-like installer.
//! * [`campaign`] — reimage campaigns that accumulate the E4 metrics.

pub mod campaign;
pub mod oscar;
pub mod windows;

pub use campaign::{CampaignEvent, CampaignReport, ReimageCampaign};
pub use oscar::OscarDeployer;
pub use windows::WindowsDeployer;

use serde::{Deserialize, Serialize};

/// Which generation of dualboot-oscar is deploying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Version {
    /// The initial system of §III.
    V1,
    /// The improved easy-to-deploy system of §IV.
    V2,
}

/// Calibrated operation durations (documented constants, not measurements;
/// see DESIGN.md §6). The paper gives only "reboot ≈ 5 min"; installation
/// times are typical for the 2010-era hardware described.
pub mod times {
    use dualboot_des::time::SimDuration;

    /// One manual admin edit (ide.disk line, script patch, fstab fix...).
    pub const MANUAL_EDIT: SimDuration = SimDuration::from_mins(5);
    /// Full Windows HPC node deployment (PXE + WIM apply + joins).
    pub const WINDOWS_INSTALL: SimDuration = SimDuration::from_mins(45);
    /// Full OSCAR/systemimager node imaging.
    pub const LINUX_IMAGE: SimDuration = SimDuration::from_mins(25);
    /// v2 Windows partition-only reformat + reinstall.
    pub const WINDOWS_REIMAGE_V2: SimDuration = SimDuration::from_mins(30);
}

/// What one deployment operation did to a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeployReport {
    /// Manual administrator interventions this operation required.
    pub manual_steps: u32,
    /// Did the operation destroy an existing Linux installation?
    pub wiped_linux: bool,
    /// Did the operation destroy an existing Windows installation?
    pub wiped_windows: bool,
    /// Did the operation overwrite/erase the MBR boot code?
    pub rewrote_mbr: bool,
    /// Wall-clock duration of the operation.
    pub duration: dualboot_des::time::SimDuration,
}

/// Deployment failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The layout doesn't fit the disk.
    Disk(String),
    /// v2 `skip` layout used with an unpatched (v1) toolchain.
    SkipUnsupported,
    /// Windows reimage script needs an existing partition 1.
    NoWindowsPartition,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Disk(e) => write!(f, "disk error: {e}"),
            DeployError::SkipUnsupported => {
                write!(f, "`skip` label requires the v2-patched systemimager")
            }
            DeployError::NoWindowsPartition => {
                write!(f, "reimage script requires an existing Windows partition")
            }
        }
    }
}

impl std::error::Error for DeployError {}
