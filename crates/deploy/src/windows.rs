//! The Windows-HPC-deployment-like installer.
//!
//! Windows HPC's node deployment runs `diskpart` with the clear-text
//! script this middleware patches (§III.C.2, Figures 9/10/15), applies the
//! system image to the new partition, and writes the Windows MBR. The
//! MBR write is unconditional — which is exactly why "the reimaging of
//! Windows partitions always rewrites MBR and damages GRUB which boots
//! Linux" (§IV.A) in the v1 local-boot world.

use crate::{times, DeployError, DeployReport};
use dualboot_bootconf::diskpart::DiskpartScript;
use dualboot_des::time::SimDuration;
use dualboot_hw::disk::{Disk, DiskError, FsKind, MbrCode, PartitionContent};
use dualboot_hw::node::ComputeNode;

/// The Windows HPC deployment tool with its (possibly patched)
/// `diskpart.txt`.
#[derive(Debug, Clone)]
pub struct WindowsDeployer {
    script: DiskpartScript,
    duration: SimDuration,
}

impl WindowsDeployer {
    /// Deployment with an explicit diskpart script.
    pub fn new(script: DiskpartScript, duration: SimDuration) -> Self {
        WindowsDeployer { script, duration }
    }

    /// The stock tool (Figure 9): whole-disk `clean` + full-size NTFS.
    pub fn stock() -> Self {
        WindowsDeployer::new(DiskpartScript::original(), times::WINDOWS_INSTALL)
    }

    /// dualboot-oscar v1's patched tool (Figure 10): still `clean`s, but
    /// reserves only 150 GB for Windows.
    pub fn v1_patched() -> Self {
        WindowsDeployer::new(DiskpartScript::modified_v1(150_000), times::WINDOWS_INSTALL)
    }

    /// dualboot-oscar v2's reimage tool (Figure 15): reformat partition 1
    /// in place; Linux partitions untouched.
    pub fn v2_reimage() -> Self {
        WindowsDeployer::new(DiskpartScript::reimage_v2(), times::WINDOWS_REIMAGE_V2)
    }

    /// The script this deployer runs.
    pub fn script(&self) -> &DiskpartScript {
        &self.script
    }

    /// Deploy Windows onto a node.
    pub fn deploy(&self, node: &mut ComputeNode) -> Result<DeployReport, DeployError> {
        self.deploy_disk(&mut node.disk)
    }

    /// Deploy Windows onto a bare disk.
    pub fn deploy_disk(&self, disk: &mut Disk) -> Result<DeployReport, DeployError> {
        let had_linux = disk.has_linux();
        let had_windows = disk.has_windows();
        let mbr_before = disk.mbr();

        disk.apply_diskpart(&self.script).map_err(|e| match e {
            DiskError::NoSuchPartition(1) => DeployError::NoWindowsPartition,
            other => DeployError::Disk(other.to_string()),
        })?;

        // Image apply: the freshly formatted partition 1 becomes the
        // Windows system volume.
        let p1 = disk
            .partition_mut(1)
            .ok_or(DeployError::NoWindowsPartition)?;
        if p1.fs != FsKind::Ntfs {
            return Err(DeployError::Disk(format!(
                "partition 1 is {:?}, expected NTFS",
                p1.fs
            )));
        }
        p1.content = PartitionContent::WindowsSystem;
        p1.active = true;

        // The Windows installer always writes its own MBR.
        disk.set_mbr(MbrCode::WindowsMbr);

        Ok(DeployReport {
            manual_steps: 0, // the diskpart patch is a campaign-level step
            wiped_linux: had_linux && !disk.has_linux(),
            wiped_windows: had_windows, // reformat always clears the old install
            rewrote_mbr: mbr_before != MbrCode::WindowsMbr,
            duration: self.duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscar::OscarDeployer;
    use crate::Version;
    use dualboot_bootconf::os::OsKind;
    use dualboot_hw::boot;
    use dualboot_hw::node::FirmwareBootOrder;

    fn fresh_node() -> ComputeNode {
        ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk)
    }

    #[test]
    fn stock_deploy_takes_whole_disk() {
        let mut n = fresh_node();
        let report = WindowsDeployer::stock().deploy(&mut n).unwrap();
        assert!(!report.wiped_linux); // nothing to wipe
        assert!(n.disk.has_windows());
        assert_eq!(n.disk.partition(1).unwrap().size_mb, 250_000);
        assert_eq!(n.disk.free_mb(), 0);
        assert_eq!(n.disk.mbr(), MbrCode::WindowsMbr);
    }

    #[test]
    fn windows_first_then_linux_is_the_v1_order() {
        // The §III.C.2 constraint: Windows first (clean), Linux after.
        let mut n = fresh_node();
        WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        assert_eq!(n.disk.free_mb(), 100_000);
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        assert!(n.disk.has_windows());
        assert!(n.disk.has_linux());
        // Linux install re-wrote GRUB over the Windows MBR
        assert_eq!(n.disk.mbr(), MbrCode::GrubStage1);
        n.begin_boot();
        assert_eq!(n.complete_boot(None).unwrap().0, OsKind::Linux);
    }

    #[test]
    fn v1_windows_reinstall_destroys_linux() {
        // The headline v1 failure (E4): reinstalling Windows after Linux
        // wipes the Linux partitions *and* the MBR.
        let mut n = fresh_node();
        WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        let report = WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        assert!(report.wiped_linux);
        assert!(report.rewrote_mbr);
        assert!(!n.disk.has_linux());
    }

    #[test]
    fn v2_reimage_preserves_linux() {
        // The v2 fix (Figure 15): reformat partition 1 only.
        let mut n = fresh_node();
        WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        OscarDeployer::eridani(Version::V2).deploy(&mut n).unwrap();
        let report = WindowsDeployer::v2_reimage().deploy(&mut n).unwrap();
        assert!(!report.wiped_linux);
        assert!(n.disk.has_linux());
        assert!(n.disk.has_windows());
        // ... but the MBR is still rewritten — harmless under PXE (v2),
        // fatal under local boot (v1). The boot resolver shows it:
        assert_eq!(n.disk.mbr(), MbrCode::WindowsMbr);
        assert_eq!(
            boot::resolve_local(&n.disk).unwrap().0,
            OsKind::Windows // local boot now lands on Windows regardless
        );
    }

    #[test]
    fn v2_reimage_needs_existing_partition() {
        let mut n = fresh_node();
        assert_eq!(
            WindowsDeployer::v2_reimage().deploy(&mut n),
            Err(DeployError::NoWindowsPartition)
        );
    }

    #[test]
    fn reimage_clears_previous_windows_content() {
        let mut n = fresh_node();
        WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        let report = WindowsDeployer::v2_reimage().deploy(&mut n).unwrap();
        assert!(report.wiped_windows);
        assert!(n.disk.has_windows()); // fresh install in place
    }

    #[test]
    fn durations_differ_between_full_and_reimage() {
        assert!(times::WINDOWS_REIMAGE_V2 < times::WINDOWS_INSTALL);
        let mut n = fresh_node();
        let full = WindowsDeployer::v1_patched().deploy(&mut n).unwrap();
        let re = WindowsDeployer::v2_reimage().deploy(&mut n).unwrap();
        assert!(re.duration < full.duration);
    }
}
