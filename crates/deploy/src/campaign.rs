//! Reimage campaigns — the E4 experiment engine.
//!
//! A campaign replays a sequence of maintenance events (Windows reimage,
//! Linux reimage, initial installs) against a fleet of nodes under either
//! middleware generation and accumulates what the paper reports
//! qualitatively: administrator effort, collateral reinstalls, and wall
//! time. One-time toolchain patches (v2's systemimager/systeminstaller
//! patch, both versions' diskpart patch) are charged once at campaign
//! start, per §IV.B.

use crate::oscar::OscarDeployer;
use crate::windows::WindowsDeployer;
use crate::{times, DeployError, Version};
use dualboot_des::time::SimDuration;
use dualboot_hw::node::{ComputeNode, FirmwareBootOrder};
use serde::{Deserialize, Serialize};

/// One maintenance event applied to the whole fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// Reimage every node's Windows side.
    WindowsReimage,
    /// Rebuild and push a fresh Linux image to every node.
    LinuxReimage,
}

/// Accumulated campaign metrics (one row of the E4 table).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Maintenance events processed.
    pub events: u32,
    /// Manual administrator interventions (file edits, script patches).
    pub manual_steps: u32,
    /// Linux reinstalls forced by Windows maintenance (v1's collateral
    /// damage), in node-events.
    pub collateral_linux_reinstalls: u32,
    /// Total wall time spent on maintenance. Imaging is fleet-parallel
    /// (systemimager/WinHPC push all nodes at once), so each event costs
    /// one image duration plus its manual edits.
    pub wall_time: SimDuration,
    /// Node-events where Windows maintenance left the node without a
    /// bootable Linux until the collateral reinstall (v1's outage window;
    /// the node itself still boots — into Windows).
    pub linux_outage_node_events: u32,
}

/// A fleet maintenance campaign under one middleware generation.
#[derive(Debug)]
pub struct ReimageCampaign {
    version: Version,
    nodes: Vec<ComputeNode>,
    report: CampaignReport,
}

impl ReimageCampaign {
    /// Set up `node_count` freshly installed nodes under `version`:
    /// Windows first, then Linux (the only order v1 permits), with the
    /// one-time patches charged here.
    pub fn new(version: Version, node_count: u32) -> Result<Self, DeployError> {
        let firmware = match version {
            Version::V1 => FirmwareBootOrder::LocalDisk,
            Version::V2 => FirmwareBootOrder::PxeFirst,
        };
        let mut report = CampaignReport::default();
        // One-time setup effort:
        // both versions patch diskpart.txt (1 step); v2 additionally
        // patches systemimager + systeminstaller (2 steps, §IV.B.1).
        report.manual_steps += match version {
            Version::V1 => 1,
            Version::V2 => 3,
        };
        report.wall_time +=
            times::MANUAL_EDIT.saturating_mul(u64::from(report.manual_steps));

        let win = WindowsDeployer::v1_patched();
        let lin = OscarDeployer::eridani(version);
        let mut nodes = Vec::with_capacity(node_count as usize);
        for i in 1..=node_count {
            let mut n = ComputeNode::eridani(i, firmware);
            win.deploy(&mut n)?;
            lin.deploy(&mut n)?;
            nodes.push(n);
        }
        // Initial install: one Windows push + one Linux push (parallel
        // across the fleet) + v1's per-rebuild manual edits.
        let lin_manual = match version {
            Version::V1 => crate::oscar::V1_MANUAL_EDITS_PER_REBUILD,
            Version::V2 => 0,
        };
        report.manual_steps += lin_manual;
        report.wall_time += times::WINDOWS_INSTALL
            + times::LINUX_IMAGE
            + times::MANUAL_EDIT.saturating_mul(u64::from(lin_manual));
        Ok(ReimageCampaign {
            version,
            nodes,
            report,
        })
    }

    /// Apply one maintenance event to the whole fleet.
    pub fn run_event(&mut self, event: CampaignEvent) -> Result<(), DeployError> {
        self.report.events += 1;
        match event {
            CampaignEvent::WindowsReimage => {
                let deployer = match self.version {
                    // v1 has no partition-preserving script: reimaging
                    // Windows replays the Figure-10 clean+create flow.
                    Version::V1 => WindowsDeployer::v1_patched(),
                    Version::V2 => WindowsDeployer::v2_reimage(),
                };
                let mut wiped = false;
                let mut dur = SimDuration::ZERO;
                for n in &mut self.nodes {
                    let r = deployer.deploy(n)?;
                    wiped |= r.wiped_linux;
                    dur = r.duration; // fleet-parallel push
                    if r.wiped_linux {
                        self.report.linux_outage_node_events += 1;
                    }
                }
                self.report.wall_time += dur;
                if wiped {
                    // Collateral: Linux must be rebuilt on every node.
                    self.report.collateral_linux_reinstalls += self.nodes.len() as u32;
                    self.reimage_linux()?;
                }
            }
            CampaignEvent::LinuxReimage => {
                self.reimage_linux()?;
            }
        }
        Ok(())
    }

    fn reimage_linux(&mut self) -> Result<(), DeployError> {
        let deployer = OscarDeployer::eridani(self.version);
        let mut manual = 0;
        let mut dur = SimDuration::ZERO;
        for n in &mut self.nodes {
            let r = deployer.deploy(n)?;
            manual = r.manual_steps; // per-rebuild, not per-node
            dur = r.duration;
        }
        self.report.manual_steps += manual;
        self.report.wall_time += dur;
        Ok(())
    }

    /// Run a whole event sequence and return the final report.
    pub fn run(mut self, events: &[CampaignEvent]) -> Result<CampaignReport, DeployError> {
        for e in events {
            self.run_event(*e)?;
        }
        Ok(self.report)
    }

    /// Current accumulated report.
    pub fn report(&self) -> &CampaignReport {
        &self.report
    }

    /// The fleet (for post-campaign assertions).
    pub fn nodes(&self) -> &[ComputeNode] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIXED: [CampaignEvent; 4] = [
        CampaignEvent::WindowsReimage,
        CampaignEvent::LinuxReimage,
        CampaignEvent::WindowsReimage,
        CampaignEvent::WindowsReimage,
    ];

    #[test]
    fn v1_windows_reimage_forces_fleetwide_linux_reinstalls() {
        let report = ReimageCampaign::new(Version::V1, 16)
            .unwrap()
            .run(&MIXED)
            .unwrap();
        // 3 Windows reimages × 16 nodes of collateral
        assert_eq!(report.collateral_linux_reinstalls, 48);
        assert_eq!(report.linux_outage_node_events, 48);
    }

    #[test]
    fn v2_windows_reimage_has_no_collateral() {
        let report = ReimageCampaign::new(Version::V2, 16)
            .unwrap()
            .run(&MIXED)
            .unwrap();
        assert_eq!(report.collateral_linux_reinstalls, 0);
        assert_eq!(report.linux_outage_node_events, 0);
    }

    #[test]
    fn v2_total_effort_is_lower_despite_setup_patches() {
        let v1 = ReimageCampaign::new(Version::V1, 16)
            .unwrap()
            .run(&MIXED)
            .unwrap();
        let v2 = ReimageCampaign::new(Version::V2, 16)
            .unwrap()
            .run(&MIXED)
            .unwrap();
        assert!(
            v2.manual_steps < v1.manual_steps,
            "v2 {} vs v1 {}",
            v2.manual_steps,
            v1.manual_steps
        );
        assert!(v2.wall_time < v1.wall_time);
    }

    #[test]
    fn empty_campaign_charges_only_setup() {
        let v2 = ReimageCampaign::new(Version::V2, 4).unwrap().run(&[]).unwrap();
        assert_eq!(v2.events, 0);
        assert_eq!(v2.collateral_linux_reinstalls, 0);
        // 3 setup patches, 0 per-rebuild edits
        assert_eq!(v2.manual_steps, 3);
        let v1 = ReimageCampaign::new(Version::V1, 4).unwrap().run(&[]).unwrap();
        // 1 diskpart patch + 4 initial-image edits
        assert_eq!(v1.manual_steps, 5);
    }

    #[test]
    fn fleet_ends_dual_bootable_after_campaign() {
        for version in [Version::V1, Version::V2] {
            let mut c = ReimageCampaign::new(version, 4).unwrap();
            for e in MIXED {
                c.run_event(e).unwrap();
            }
            for n in c.nodes() {
                assert!(n.disk.has_linux(), "{version:?}: node lost Linux");
                assert!(n.disk.has_windows(), "{version:?}: node lost Windows");
            }
        }
    }
}
