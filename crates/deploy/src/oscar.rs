//! The OSCAR/systemimager-like Linux deployer.
//!
//! Consumes an `ide.disk` layout and images a node: creates/replaces the
//! Linux partitions, stages the GRUB menu and (v1) the FAT control
//! partition's pre-staged `controlmenu*` files, and installs GRUB stage 1
//! into the MBR — exactly the artefacts the boot resolver in `dualboot-hw`
//! later consumes.
//!
//! The v1/v2 difference is the `skip` label: the stock (v1) toolchain does
//! not know it ([`DeployError::SkipUnsupported`]), and v1 therefore
//! spells the Windows reservation as a real `ntfs` line plus four manual
//! edits per image rebuild (§III.C.1). The patched (v2) toolchain honours
//! `skip` by leaving the partition completely untouched.

use crate::{times, DeployError, DeployReport, Version};
use dualboot_bootconf::grub::{eridani as grub_eridani, GrubConfig};
use dualboot_bootconf::idedisk::{FsType, IdeDisk, IdeDiskLine, SizeSpec};
use dualboot_bootconf::oscarimage::MasterScript;
use dualboot_bootconf::os::OsKind;
use dualboot_hw::disk::{Disk, FsKind, MbrCode, PartitionContent};
use dualboot_hw::fatfs::FatFs;
use dualboot_hw::node::ComputeNode;

/// Manual edits each v1 image rebuild needs (§III.C.1's four points).
pub const V1_MANUAL_EDITS_PER_REBUILD: u32 = 4;

/// The systemimager/systeminstaller-like deployer.
///
/// ```
/// use dualboot_deploy::oscar::OscarDeployer;
/// use dualboot_deploy::windows::WindowsDeployer;
/// use dualboot_deploy::Version;
/// use dualboot_hw::node::{ComputeNode, FirmwareBootOrder};
///
/// // The only order v1 permits: Windows first, Linux after.
/// let mut node = ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk);
/// WindowsDeployer::v1_patched().deploy(&mut node).unwrap();
/// let report = OscarDeployer::eridani(Version::V1).deploy(&mut node).unwrap();
/// assert_eq!(report.manual_steps, 4); // the §III.C.1 edits
/// assert!(node.disk.has_linux() && node.disk.has_windows());
/// ```
#[derive(Debug, Clone)]
pub struct OscarDeployer {
    version: Version,
    layout: IdeDisk,
    /// The `menu.lst` installed into `/boot` (v1: the Figure-2 redirect;
    /// v2: a direct menu, since PXE owns boot selection anyway).
    menu_lst: GrubConfig,
}

impl OscarDeployer {
    /// Deployer with an explicit layout and boot menu.
    pub fn new(version: Version, layout: IdeDisk, menu_lst: GrubConfig) -> Self {
        OscarDeployer {
            version,
            layout,
            menu_lst,
        }
    }

    /// The Eridani deployer for a given middleware generation.
    pub fn eridani(version: Version) -> Self {
        match version {
            Version::V1 => OscarDeployer::new(
                Version::V1,
                IdeDisk::eridani_v1(),
                grub_eridani::menu_lst(), // Figure 2: redirect to the FAT file
            ),
            Version::V2 => OscarDeployer::new(
                Version::V2,
                IdeDisk::eridani_v2(),
                // Direct menu for the PXE-less fallback path, matched to
                // the Figure-14 layout (root on sda6).
                grub_eridani::controlmenu_v2(OsKind::Linux),
            ),
        }
    }

    /// The layout this deployer images.
    pub fn layout(&self) -> &IdeDisk {
        &self.layout
    }

    /// Which generation this deployer is.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The `oscarimage.master` script systemimager generates for this
    /// layout, **before** any manual edits.
    pub fn generated_master(&self) -> MasterScript {
        MasterScript::generate(&self.layout)
    }

    /// The master script after the §III.C.1 manual edits, plus how many
    /// edits were needed (0 for v2 layouts — nothing to patch).
    pub fn patched_master(&self) -> (MasterScript, u32) {
        let mut script = self.generated_master();
        let steps = script.apply_v1_patches(&self.layout);
        (script, steps)
    }

    /// Image a node's disk according to the layout.
    ///
    /// Existing partitions named by `skip` (v2) or `ntfs` (v1's manual
    /// reservation) survive with their contents; everything else named by
    /// the layout is recreated from scratch.
    pub fn deploy(&self, node: &mut ComputeNode) -> Result<DeployReport, DeployError> {
        self.deploy_disk(&mut node.disk)
    }

    /// Image a bare disk (the node-less core of [`OscarDeployer::deploy`]).
    pub fn deploy_disk(&self, disk: &mut Disk) -> Result<DeployReport, DeployError> {
        self.deploy_disk_inner(disk, true)
    }

    /// Image a disk with the *unpatched* generated master script — what a
    /// v1 administrator who skipped the §III.C.1 edits would get. The FAT
    /// control partition is allocated but never formatted (`mkpart`
    /// without `mkpartfs`), so the deployed node's GRUB redirect dangles.
    pub fn deploy_disk_unpatched(&self, disk: &mut Disk) -> Result<DeployReport, DeployError> {
        self.deploy_disk_inner(disk, false)
    }

    fn deploy_disk_inner(&self, disk: &mut Disk, patched: bool) -> Result<DeployReport, DeployError> {
        if self.layout.uses_skip() && self.version == Version::V1 {
            return Err(DeployError::SkipUnsupported);
        }
        // Build (and, normally, patch) the systemimager master script; v1
        // derives its per-rebuild manual-step count from the real edits.
        let (master, patch_steps) = if patched {
            self.patched_master()
        } else {
            (self.generated_master(), 0)
        };
        let fat_formatted = master
            .patch_status(&self.layout)
            .fat_mkpartfs;
        let had_windows = disk.has_windows();
        let mbr_before = disk.mbr();

        for line in &self.layout.lines {
            let Some(number) = device_partition_number(&line.device) else {
                continue; // tmpfs / nfs lines are not physical
            };
            match line.fstype {
                FsType::Skip => {
                    // v2: reserve without touching. If nothing is there yet
                    // (first-ever install), allocate placeholder space so
                    // later Windows deployment has its partition 1 slot.
                    if disk.partition(number).is_none() {
                        let size = fixed_size(line, disk)?;
                        disk.add_partition(number, size, FsKind::Unformatted, PartitionContent::Empty)
                            .map_err(|e| DeployError::Disk(e.to_string()))?;
                    }
                }
                FsType::Ntfs => {
                    // v1's manual reservation: keep an installed Windows,
                    // create the placeholder otherwise.
                    if disk.partition(number).is_none() {
                        let size = fixed_size(line, disk)?;
                        disk.add_partition(number, size, FsKind::Ntfs, PartitionContent::Empty)
                            .map_err(|e| DeployError::Disk(e.to_string()))?;
                    }
                }
                FsType::Ext3 | FsType::Swap | FsType::Vfat => {
                    // (Re)created from the image.
                    if disk.partition(number).is_some() {
                        disk.remove_partition(number)
                            .map_err(|e| DeployError::Disk(e.to_string()))?;
                    }
                    let size = match line.size {
                        SizeSpec::Fill => disk.free_mb(),
                        _ => fixed_size(line, disk)?,
                    };
                    let (fs, content) = if line.fstype == FsType::Vfat && !fat_formatted {
                        // Unpatched v1: `mkpart` allocates but never
                        // formats; the control files are never staged.
                        (FsKind::Unformatted, PartitionContent::Empty)
                    } else {
                        self.materialise(line)
                    };
                    disk.add_partition(number, size, fs, content)
                        .map_err(|e| DeployError::Disk(e.to_string()))?;
                    if line.bootable {
                        // systemconfigurator marks the boot partition active
                        for p in 0..=8 {
                            if let Some(part) = disk.partition_mut(p) {
                                part.active = part.number == number;
                            }
                        }
                    }
                }
                FsType::Tmpfs | FsType::Nfs => {}
            }
        }
        // systemconfigurator installs GRUB stage 1 into the MBR.
        disk.set_mbr(MbrCode::GrubStage1);

        // ide.disk reservation (§III.C.1 point 1) + the script edits the
        // patch pass actually performed (points 2-4).
        let manual_steps = match self.version {
            Version::V1 => {
                if patched {
                    let steps = 1 + patch_steps;
                    debug_assert_eq!(steps, V1_MANUAL_EDITS_PER_REBUILD);
                    steps
                } else {
                    0
                }
            }
            Version::V2 => 0,
        };
        Ok(DeployReport {
            manual_steps,
            wiped_linux: false, // installing Linux never wipes Linux
            wiped_windows: had_windows && !disk.has_windows(),
            rewrote_mbr: mbr_before != MbrCode::GrubStage1,
            duration: times::LINUX_IMAGE
                + times::MANUAL_EDIT.saturating_mul(u64::from(manual_steps)),
        })
    }

    /// What goes into a freshly imaged partition.
    fn materialise(&self, line: &IdeDiskLine) -> (FsKind, PartitionContent) {
        match line.fstype {
            FsType::Ext3 => match line.mountpoint.as_deref() {
                Some("/boot") => (
                    FsKind::Ext3,
                    PartitionContent::LinuxBoot {
                        menu_lst: self.menu_lst.clone(),
                    },
                ),
                _ => (FsKind::Ext3, PartitionContent::LinuxRoot),
            },
            FsType::Swap => (FsKind::Swap, PartitionContent::Empty),
            FsType::Vfat => {
                // Stage the v1 control files (§III.B.1): the live menu and
                // both pre-staged switch variants.
                let mut fat = FatFs::new();
                fat.write(
                    "controlmenu.lst",
                    grub_eridani::controlmenu(OsKind::Linux).emit(),
                );
                fat.write(
                    "controlmenu_to_linux.lst",
                    grub_eridani::controlmenu(OsKind::Linux).emit(),
                );
                fat.write(
                    "controlmenu_to_windows.lst",
                    grub_eridani::controlmenu(OsKind::Windows).emit(),
                );
                (FsKind::Vfat, PartitionContent::FatControl(fat))
            }
            _ => (FsKind::Unformatted, PartitionContent::Empty),
        }
    }
}

/// `/dev/sdaN` → `N`.
fn device_partition_number(device: &str) -> Option<u32> {
    device.strip_prefix("/dev/sda").and_then(|n| n.parse().ok())
}

fn fixed_size(line: &IdeDiskLine, disk: &Disk) -> Result<u64, DeployError> {
    match line.size {
        SizeSpec::Mb(n) => Ok(n),
        SizeSpec::Fill => Ok(disk.free_mb()),
        SizeSpec::None => Err(DeployError::Disk(format!(
            "physical partition {} has no size",
            line.device
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_hw::boot;
    use dualboot_hw::node::FirmwareBootOrder;

    fn fresh_node() -> ComputeNode {
        ComputeNode::eridani(1, FirmwareBootOrder::LocalDisk)
    }

    #[test]
    fn v1_deploy_creates_full_layout() {
        let mut n = fresh_node();
        let report = OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        assert_eq!(report.manual_steps, V1_MANUAL_EDITS_PER_REBUILD);
        assert!(n.disk.has_linux());
        assert!(n.disk.fat_control().is_some());
        assert_eq!(n.disk.mbr(), MbrCode::GrubStage1);
        // Windows placeholder reserved at partition 1
        assert_eq!(n.disk.partition(1).unwrap().fs, FsKind::Ntfs);
        assert_eq!(n.disk.partition(1).unwrap().content, PartitionContent::Empty);
    }

    #[test]
    fn v1_deployed_node_boots_linux() {
        let mut n = fresh_node();
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        n.begin_boot();
        assert_eq!(n.complete_boot(None).unwrap().0, OsKind::Linux);
    }

    #[test]
    fn v1_fat_partition_has_prestaged_switch_files() {
        let mut n = fresh_node();
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        let fat = n.disk.fat_control().unwrap();
        assert!(fat.exists("controlmenu.lst"));
        assert!(fat.exists("controlmenu_to_linux.lst"));
        assert!(fat.exists("controlmenu_to_windows.lst"));
    }

    #[test]
    fn v2_deploy_requires_patched_toolchain() {
        // The v2 layout (with `skip`) through a v1 deployer must fail the
        // way stock systemimager fails on an unknown label.
        let deployer = OscarDeployer::new(
            Version::V1,
            IdeDisk::eridani_v2(),
            grub_eridani::menu_lst(),
        );
        let mut n = fresh_node();
        assert_eq!(deployer.deploy(&mut n), Err(DeployError::SkipUnsupported));
    }

    #[test]
    fn v2_deploy_zero_manual_steps() {
        let mut n = fresh_node();
        let report = OscarDeployer::eridani(Version::V2).deploy(&mut n).unwrap();
        assert_eq!(report.manual_steps, 0);
        assert!(n.disk.has_linux());
        assert!(report.duration < times::LINUX_IMAGE + times::MANUAL_EDIT);
    }

    #[test]
    fn v2_skip_preserves_installed_windows() {
        let mut n = fresh_node();
        // Install Windows first (partition 1 with content)
        n.disk
            .add_partition(1, 16_000, FsKind::Ntfs, PartitionContent::WindowsSystem)
            .unwrap();
        let report = OscarDeployer::eridani(Version::V2).deploy(&mut n).unwrap();
        assert!(!report.wiped_windows);
        assert_eq!(
            n.disk.partition(1).unwrap().content,
            PartitionContent::WindowsSystem
        );
        assert!(n.disk.has_linux());
    }

    #[test]
    fn redeploy_replaces_linux_but_not_windows() {
        let mut n = fresh_node();
        let d = OscarDeployer::eridani(Version::V2);
        d.deploy(&mut n).unwrap();
        n.disk.partition_mut(1).unwrap().content = PartitionContent::WindowsSystem;
        // simulate user data loss check: corrupt the root, redeploy
        n.disk.partition_mut(6).unwrap().content = PartitionContent::Empty;
        d.deploy(&mut n).unwrap();
        assert!(n.disk.has_linux());
        assert_eq!(
            n.disk.partition(1).unwrap().content,
            PartitionContent::WindowsSystem
        );
    }

    #[test]
    fn v1_layout_marks_boot_partition_active() {
        let mut n = fresh_node();
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        assert!(n.disk.partition(2).unwrap().active);
    }

    #[test]
    fn fill_size_consumes_remaining_space() {
        let mut n = fresh_node();
        OscarDeployer::eridani(Version::V1).deploy(&mut n).unwrap();
        assert_eq!(n.disk.free_mb(), 0);
        let root = n.disk.partition(7).unwrap();
        assert!(root.size_mb > 200_000, "root fills the disk remainder");
    }

    #[test]
    fn unpatched_v1_deploy_produces_a_broken_redirect() {
        // Skip the §III.C.1 edits: the FAT partition exists but was never
        // formatted, so the Figure-2 redirect dangles and the node cannot
        // boot Linux — the failure mode the manual edits prevent.
        let deployer = OscarDeployer::eridani(Version::V1);
        let mut d = Disk::eridani();
        let report = deployer.deploy_disk_unpatched(&mut d).unwrap();
        assert_eq!(report.manual_steps, 0);
        assert_eq!(d.partition(6).unwrap().fs, FsKind::Unformatted);
        assert!(d.fat_control().is_none());
        assert!(matches!(
            dualboot_hw::boot::resolve_local(&d),
            Err(dualboot_hw::boot::BootError::RedirectTargetMissing(_))
        ));
    }

    #[test]
    fn manual_steps_derive_from_master_script() {
        let deployer = OscarDeployer::eridani(Version::V1);
        let (script, steps) = deployer.patched_master();
        assert_eq!(steps, 3);
        assert!(script.patch_status(deployer.layout()).fully_patched());
        assert!(script.covers_layout(deployer.layout()));
        // deploy charges 1 (ide.disk) + 3 (script edits) = the paper's 4
        let mut d = Disk::eridani();
        let report = deployer.deploy_disk(&mut d).unwrap();
        assert_eq!(report.manual_steps, V1_MANUAL_EDITS_PER_REBUILD);
    }

    #[test]
    fn deploy_disk_without_node_works() {
        let mut d = Disk::eridani();
        OscarDeployer::eridani(Version::V2).deploy_disk(&mut d).unwrap();
        assert!(boot::resolve_local(&d).is_ok());
    }

    #[test]
    fn device_number_parsing() {
        assert_eq!(device_partition_number("/dev/sda7"), Some(7));
        assert_eq!(device_partition_number("/dev/shm"), None);
        assert_eq!(device_partition_number("nfs_oscar:/home"), None);
    }
}
