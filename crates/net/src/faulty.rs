//! Link-fault injection as a [`Transport`] decorator.
//!
//! The reproduction's chaos campaigns need to disturb the communicator
//! link *deterministically*: the same `(seed, plan)` pair must produce the
//! same drops, duplications, and delays on every run. [`FaultyTransport`]
//! wraps any [`Transport`] and consults a [`FaultDice`] before forwarding
//! each message; with a [`DetRng`]-backed dice the whole fault sequence is
//! a pure function of the plan seed, and with a [`ScriptedDice`] a test
//! can force an exact drop/duplicate schedule.
//!
//! With all probabilities at zero the wrapper is an exact passthrough —
//! the dice is never consulted — so a zero-fault plan is bit-identical to
//! running with no plan at all.

use crate::proto::Message;
use crate::transport::{Transport, TransportError};
use dualboot_des::rng::DetRng;
use dualboot_obs::{ObsEvent, ObsSink, Subsystem};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// Per-message fault probabilities on one direction of a link.
///
/// `delay_polls` is how many subsequent operations on the wrapper a
/// delayed message sits out before being released (a "poll" here is any
/// send or receive call, which in the simulator corresponds to daemon
/// pump activity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct LinkFaults {
    /// Probability a sent message is silently dropped.
    pub drop_p: f64,
    /// Probability a sent message is delivered twice.
    pub dup_p: f64,
    /// Probability a sent message is held back before delivery.
    pub delay_p: f64,
    /// How many wrapper operations a delayed message is held for.
    pub delay_polls: u32,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_polls: 2,
        }
    }
}

impl LinkFaults {
    /// True when every probability is zero (the wrapper is a passthrough).
    pub fn is_quiet(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0
    }
}

/// Counters for faults the wrapper actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages silently dropped on send.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back before delivery.
    pub delayed: u64,
}

/// The randomness source consulted per potential fault.
///
/// Each send consults the dice at most three times, in a fixed order:
/// drop, then delay, then duplicate. Probabilities of zero are short-
/// circuited *before* the dice, so quiet links never consume rolls.
pub trait FaultDice {
    /// Return true if a fault with probability `p` fires.
    fn roll(&mut self, p: f64) -> bool;
}

impl FaultDice for DetRng {
    fn roll(&mut self, p: f64) -> bool {
        self.chance(p)
    }
}

/// A dice that replays a fixed outcome script (for tests).
///
/// Each [`roll`](FaultDice::roll) pops the next scripted outcome; once the
/// script is exhausted every roll is `false`. Pair it with probabilities
/// of `1.0` for the fault kinds the script should control — zero
/// probabilities are short-circuited and never reach the script.
#[derive(Debug, Clone, Default)]
pub struct ScriptedDice {
    script: VecDeque<bool>,
}

impl ScriptedDice {
    /// Build from an outcome sequence.
    pub fn new(outcomes: impl IntoIterator<Item = bool>) -> Self {
        ScriptedDice {
            script: outcomes.into_iter().collect(),
        }
    }
}

impl FaultDice for ScriptedDice {
    fn roll(&mut self, _p: f64) -> bool {
        self.script.pop_front().unwrap_or(false)
    }
}

/// A [`Transport`] decorator that injects link faults.
#[derive(Debug)]
pub struct FaultyTransport<T, D> {
    inner: T,
    dice: D,
    faults: LinkFaults,
    /// Held-back messages with a countdown of wrapper operations.
    held: VecDeque<(u32, Message)>,
    stats: LinkStats,
    obs: ObsSink,
}

impl<T: Transport, D: FaultDice> FaultyTransport<T, D> {
    /// Wrap `inner`, injecting faults per `faults` using `dice`.
    pub fn new(inner: T, faults: LinkFaults, dice: D) -> Self {
        FaultyTransport {
            inner,
            dice,
            faults,
            held: VecDeque::new(),
            stats: LinkStats::default(),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: every send outcome (sent, dropped,
    /// delayed, duplicated) is reported as a [`Subsystem::Transport`]
    /// event. The default sink is disabled and free.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Counters for the faults injected so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The wrapped transport (to reach endpoint-specific methods).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap, discarding any still-held messages.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.dice.roll(p)
    }

    /// Age held messages by one operation and release the ripe ones.
    fn tick_held(&mut self) -> Result<(), TransportError> {
        if self.held.is_empty() {
            return Ok(());
        }
        for slot in &mut self.held {
            slot.0 = slot.0.saturating_sub(1);
        }
        while matches!(self.held.front(), Some((0, _))) {
            let (_, msg) = self.held.pop_front().expect("front checked");
            self.inner.send(&msg)?;
        }
        Ok(())
    }
}

impl<T: Transport, D: FaultDice> Transport for FaultyTransport<T, D> {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.tick_held()?;
        if self.roll(self.faults.drop_p) {
            self.stats.dropped += 1;
            self.obs.emit(Subsystem::Transport, None, ObsEvent::MsgDropped);
            return Ok(());
        }
        if self.roll(self.faults.delay_p) {
            self.stats.delayed += 1;
            let polls = self.faults.delay_polls.max(1);
            self.obs
                .emit(Subsystem::Transport, None, ObsEvent::MsgDelayed { polls });
            self.held.push_back((polls, msg.clone()));
            return Ok(());
        }
        self.inner.send(msg)?;
        self.obs.emit(Subsystem::Transport, None, ObsEvent::MsgSent);
        if self.roll(self.faults.dup_p) {
            self.stats.duplicated += 1;
            self.obs
                .emit(Subsystem::Transport, None, ObsEvent::MsgDuplicated);
            self.inner.send(msg)?;
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.tick_held()?;
        self.inner.try_recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.tick_held()?;
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_pair;

    fn order(seq: u64) -> Message {
        Message::RebootOrder {
            target: dualboot_bootconf::os::OsKind::Windows,
            count: 1,
            seq,
        }
    }

    #[test]
    fn quiet_faults_are_exact_passthrough() {
        let (a, mut b) = in_proc_pair();
        // A dice that panics if consulted proves zero probabilities
        // short-circuit.
        struct Panicky;
        impl FaultDice for Panicky {
            fn roll(&mut self, _p: f64) -> bool {
                panic!("quiet link consulted the dice")
            }
        }
        let mut fa = FaultyTransport::new(a, LinkFaults::default(), Panicky);
        fa.send(&order(1)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(order(1)));
        assert_eq!(fa.stats(), LinkStats::default());
    }

    #[test]
    fn scripted_drop_loses_the_message() {
        let (a, mut b) = in_proc_pair();
        let faults = LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::default()
        };
        let mut fa = FaultyTransport::new(a, faults, ScriptedDice::new([true, false]));
        fa.send(&order(1)).unwrap(); // dropped
        fa.send(&order(2)).unwrap(); // delivered
        assert_eq!(b.try_recv().unwrap(), Some(order(2)));
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(fa.stats().dropped, 1);
    }

    #[test]
    fn scripted_duplicate_delivers_twice() {
        let (a, mut b) = in_proc_pair();
        let faults = LinkFaults {
            dup_p: 1.0,
            ..LinkFaults::default()
        };
        let mut fa = FaultyTransport::new(a, faults, ScriptedDice::new([true]));
        fa.send(&order(3)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(order(3)));
        assert_eq!(b.try_recv().unwrap(), Some(order(3)));
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(fa.stats().duplicated, 1);
    }

    #[test]
    fn delayed_message_arrives_after_polls() {
        let (a, mut b) = in_proc_pair();
        let faults = LinkFaults {
            delay_p: 1.0,
            delay_polls: 2,
            ..LinkFaults::default()
        };
        let mut fa = FaultyTransport::new(a, faults, ScriptedDice::new([true]));
        fa.send(&order(4)).unwrap(); // held
        assert_eq!(b.try_recv().unwrap(), None);
        let _ = fa.try_recv(); // poll 1
        assert_eq!(b.try_recv().unwrap(), None);
        let _ = fa.try_recv(); // poll 2 — releases
        assert_eq!(b.try_recv().unwrap(), Some(order(4)));
        assert_eq!(fa.stats().delayed, 1);
    }

    #[test]
    fn send_outcomes_reach_the_obs_sink() {
        let (a, _b) = in_proc_pair();
        let faults = LinkFaults {
            drop_p: 1.0,
            delay_p: 1.0,
            delay_polls: 3,
            ..LinkFaults::default()
        };
        // Script: drop the first send; pass-then-delay the second.
        let mut fa = FaultyTransport::new(a, faults, ScriptedDice::new([true, false, true]));
        let sink = ObsSink::recording();
        fa.set_obs(sink.clone());
        fa.send(&order(1)).unwrap(); // dropped
        fa.send(&order(2)).unwrap(); // delayed
        let events = sink.events_of(Subsystem::Transport);
        assert_eq!(
            events,
            vec![ObsEvent::MsgDropped, ObsEvent::MsgDelayed { polls: 3 }]
        );
        assert_eq!(sink.count(Subsystem::Transport), 2);
    }

    #[test]
    fn det_rng_dice_is_reproducible() {
        let run = || {
            let (a, mut b) = in_proc_pair();
            let faults = LinkFaults {
                drop_p: 0.5,
                dup_p: 0.25,
                ..LinkFaults::default()
            };
            let mut fa = FaultyTransport::new(a, faults, DetRng::seed_from(99));
            let mut seen = Vec::new();
            for i in 0..64 {
                fa.send(&order(i)).unwrap();
                while let Some(m) = b.try_recv().unwrap() {
                    seen.push(m.encode());
                }
            }
            (seen, fa.stats())
        };
        assert_eq!(run(), run());
        let (_, stats) = run();
        assert!(stats.dropped > 0 && stats.duplicated > 0);
    }
}
