#![warn(missing_docs)]

//! # dualboot-net — the head-node wire protocol
//!
//! The two head nodes talk over a TCP/IP socket: "A C++ program was
//! written for TCP/IP communication with Windows HPC 2008 R2 head node"
//! (§III.B.3), and in v2.0 "Windows queue status is submitted to Linux
//! side by TCP/IP socket communication" (§IV.A.3).
//!
//! * [`wire`] — the detector's fixed-position report string of Figure 5
//!   (`[state][needed CPUs][stuck job id]`), byte-compatible with the
//!   Figure 6 examples.
//! * [`proto`] — the line-oriented message protocol the communicators
//!   speak (queue-state reports and reboot orders — steps 2 and 5 of
//!   Figure 11).
//! * [`transport`] — a [`transport::Transport`] abstraction with two
//!   implementations: an in-process channel pair for the deterministic
//!   simulation, and a real `std::net` TCP transport used by the
//!   threaded integration test, carrying the same bytes.
//! * [`faulty`] — a deterministic fault-injecting [`transport::Transport`]
//!   decorator (drops, duplications, delays) for chaos campaigns.

pub mod faulty;
pub mod proto;
pub mod transport;
pub mod wire;

pub use faulty::{FaultDice, FaultyTransport, LinkFaults, LinkStats, ScriptedDice};
pub use proto::{ClusterReport, Message};
pub use transport::{in_proc_pair, InProcTransport, TcpTransport, Transport, TransportError};
pub use wire::DetectorReport;
