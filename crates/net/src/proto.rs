//! The communicator message protocol.
//!
//! Figure 11 numbers the v2 control cycle:
//!
//! 1. the Windows communicator fetches its queue state on a fixed cycle;
//! 2. it **sends the queue state** to the Linux communicator;
//! 3. the Linux communicator fetches PBS state and decides;
//! 4. it sets the target-OS flag;
//! 5. it **sends reboot orders** to whichever scheduler must release nodes.
//!
//! Steps 2 and 5 travel over the socket; this module defines those
//! messages and their line-oriented text encoding (one message per line,
//! `\n`-terminated), which both the in-process and the TCP transports
//! carry verbatim.

use crate::wire::{DetectorReport, WireError};
use dualboot_bootconf::os::OsKind;
use dualboot_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One member cluster's state summary, gossiped periodically to a grid
/// broker (the federation layer's analogue of the Figure-5 report).
///
/// The broker routes on this view alone — it never reads a member's
/// schedulers directly — so dropped or delayed report lines degrade its
/// picture exactly as a flaky campus link would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// When the member generated the report (its local clock).
    pub at: SimTime,
    /// Jobs queued on the Linux (PBS) side.
    pub linux_queued: u32,
    /// Jobs queued on the Windows (WinHPC) side.
    pub windows_queued: u32,
    /// Unallocated cores on nodes currently running Linux.
    pub linux_free_cores: u32,
    /// Unallocated cores on nodes currently running Windows.
    pub windows_free_cores: u32,
    /// Nodes online under Linux.
    pub linux_nodes: u32,
    /// Nodes online under Windows.
    pub windows_nodes: u32,
    /// Nodes mid-reboot (switching OS or recovering from a fault).
    pub booting: u32,
    /// Nodes quarantined by the boot watchdog — physically present but
    /// removed from both schedulers until repaired. Brokers must not
    /// count them as routable capacity. `0` on legacy report lines that
    /// predate the field.
    pub quarantined: u32,
    /// Elastic-backend members only: pool slots currently deallocated
    /// (no VM exists there). Brokers must not count them as routable
    /// capacity. `0` for bare-metal members and legacy report lines.
    pub torn_down: u32,
    /// Cumulative energy estimate in watt-hours since the member
    /// started, under the flat per-state wattage model. `0` on legacy
    /// report lines that predate the field.
    pub energy_wh: u64,
}

/// A protocol message between head-node communicators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Step 2: a queue-state report from the named side's detector,
    /// carrying the Figure-5 string.
    QueueState {
        /// Which platform's queue this report describes.
        os: OsKind,
        /// The detector's report.
        report: DetectorReport,
    },
    /// Step 5: an order to release `count` nodes (submit that many switch
    /// jobs to the receiving side's scheduler, rebooting into `target`).
    RebootOrder {
        /// OS the released nodes must boot into.
        target: OsKind,
        /// How many nodes to release.
        count: u32,
        /// Sender-assigned order number, so retransmissions of the same
        /// decision are recognisable. `0` on legacy lines without one.
        seq: u64,
    },
    /// Acknowledgement of an order (how many switch jobs were queued).
    OrderAck {
        /// Switch jobs actually submitted.
        queued: u32,
        /// The order number being acknowledged (`0` for legacy lines).
        seq: u64,
    },
    /// Federation gossip: a member cluster's periodic state report to the
    /// grid broker. `member` must be a single whitespace-free token (it
    /// travels as one field of the line protocol).
    GridReport {
        /// The reporting cluster's name.
        member: String,
        /// Its state summary.
        report: ClusterReport,
    },
    /// A simulation-service frame: one `dualboot/v1` JSON document
    /// (request or response), opaque to this layer. JSON is encoded
    /// compactly with `\n` escaped, so a frame is always a single line —
    /// the serve protocol rides every transport (in-process, TCP, chaos
    /// decorators) unchanged.
    Serve {
        /// The JSON document, sans newline.
        payload: String,
    },
}

/// Errors decoding a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Unknown message keyword.
    UnknownVerb(String),
    /// Wrong number or shape of fields.
    BadFields(String),
    /// The embedded detector report was malformed.
    BadReport(WireError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownVerb(v) => write!(f, "unknown message verb {v:?}"),
            ProtoError::BadFields(l) => write!(f, "malformed message line {l:?}"),
            ProtoError::BadReport(e) => write!(f, "bad embedded report: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl Message {
    /// Encode as a single protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Message::QueueState { os, report } => {
                format!(
                    "STATE {} {}",
                    os.tag(),
                    report.encode().expect("report within wire limits")
                )
            }
            Message::RebootOrder { target, count, seq } => {
                format!("REBOOT {} {} {}", target.tag(), count, seq)
            }
            Message::OrderAck { queued, seq } => format!("ACK {queued} {seq}"),
            Message::GridReport { member, report } => {
                debug_assert!(
                    !member.is_empty() && !member.contains(char::is_whitespace),
                    "member name must be one token: {member:?}"
                );
                // Eight positional numbers every vintage understands, then
                // the optional counters as tagged `k=v` fields so a peer
                // that grew them in a different order can never have one
                // misread as another (a pure-positional 10-number line
                // used to read an energy counter as a teardown count).
                format!(
                    "GRID {} {} {} {} {} {} {} {} {} q={} td={} ewh={}",
                    member,
                    report.at.as_millis(),
                    report.linux_queued,
                    report.windows_queued,
                    report.linux_free_cores,
                    report.windows_free_cores,
                    report.linux_nodes,
                    report.windows_nodes,
                    report.booting,
                    report.quarantined,
                    report.torn_down,
                    report.energy_wh,
                )
            }
            Message::Serve { payload } => {
                debug_assert!(
                    !payload.contains('\n') && !payload.is_empty(),
                    "serve payload must be one non-empty line"
                );
                format!("SERVE {payload}")
            }
        }
    }

    /// Decode one protocol line.
    pub fn decode(line: &str) -> Result<Message, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        // Serve frames carry an opaque payload that may itself contain
        // spaces: everything after the verb is the document.
        if let Some(payload) = line.strip_prefix("SERVE ") {
            if payload.is_empty() {
                return Err(ProtoError::BadFields(line.to_string()));
            }
            return Ok(Message::Serve { payload: payload.to_string() });
        }
        let mut parts = line.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        match verb {
            "STATE" => {
                let os: OsKind = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                let payload = parts
                    .next()
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                let report = DetectorReport::decode(payload).map_err(ProtoError::BadReport)?;
                Ok(Message::QueueState { os, report })
            }
            "REBOOT" => {
                let target: OsKind = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                let rest = parts
                    .next()
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                let mut fields = rest.split_whitespace();
                let count: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                // Pre-seq peers omit the order number; read it as 0.
                let seq: u64 = match fields.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| ProtoError::BadFields(line.to_string()))?,
                    None => 0,
                };
                if fields.next().is_some() {
                    return Err(ProtoError::BadFields(line.to_string()));
                }
                Ok(Message::RebootOrder { target, count, seq })
            }
            "ACK" => {
                let queued: u32 = parts
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .ok_or_else(|| ProtoError::BadFields(line.to_string()))?;
                let seq: u64 = match parts.next() {
                    Some(s) => s
                        .trim()
                        .parse()
                        .map_err(|_| ProtoError::BadFields(line.to_string()))?,
                    None => 0,
                };
                Ok(Message::OrderAck { queued, seq })
            }
            "GRID" => {
                let bad = || ProtoError::BadFields(line.to_string());
                let member = parts.next().filter(|m| !m.is_empty()).ok_or_else(bad)?;
                let rest = parts.next().ok_or_else(bad)?;
                let mut nums: Vec<u64> = Vec::new();
                let mut quarantined: Option<u32> = None;
                let mut torn_down: Option<u32> = None;
                let mut energy_wh: Option<u64> = None;
                let mut tagged = false;
                for tok in rest.split_whitespace() {
                    if let Some((key, value)) = tok.split_once('=') {
                        tagged = true;
                        match key {
                            "q" => quarantined = Some(value.parse().map_err(|_| bad())?),
                            "td" => torn_down = Some(value.parse().map_err(|_| bad())?),
                            "ewh" => energy_wh = Some(value.parse().map_err(|_| bad())?),
                            // Unknown tags are a *newer* vintage's fields:
                            // skip them instead of dropping the report.
                            _ => {}
                        }
                    } else {
                        if tagged {
                            // A positional number after a tagged field has
                            // no defined position — reject the line.
                            return Err(bad());
                        }
                        nums.push(tok.parse::<u64>().map_err(|_| bad())?);
                    }
                }
                // A tagged line carries exactly the 8 universal numbers.
                // Untagged lines are legacy positional vintages: 8 numbers
                // before the quarantine counter, 9 before the
                // elastic-backend pair, 10/11 with teardown and energy.
                let positional_ok = if tagged {
                    nums.len() == 8
                } else {
                    (8..=11).contains(&nums.len())
                };
                if !positional_ok {
                    return Err(bad());
                }
                let field = |i: usize| u32::try_from(nums[i]).map_err(|_| bad());
                let opt = |i: usize| {
                    if nums.len() > i {
                        u32::try_from(nums[i]).map_err(|_| bad())
                    } else {
                        Ok(0)
                    }
                };
                Ok(Message::GridReport {
                    member: member.to_string(),
                    report: ClusterReport {
                        at: SimTime::from_millis(nums[0]),
                        linux_queued: field(1)?,
                        windows_queued: field(2)?,
                        linux_free_cores: field(3)?,
                        windows_free_cores: field(4)?,
                        linux_nodes: field(5)?,
                        windows_nodes: field(6)?,
                        booting: field(7)?,
                        quarantined: match quarantined {
                            Some(v) => v,
                            None => opt(8)?,
                        },
                        torn_down: match torn_down {
                            Some(v) => v,
                            None => opt(9)?,
                        },
                        energy_wh: match energy_wh {
                            Some(v) => v,
                            None => {
                                if nums.len() > 10 {
                                    nums[10]
                                } else {
                                    0
                                }
                            }
                        },
                    },
                })
            }
            other => Err(ProtoError::UnknownVerb(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_state_roundtrip() {
        let m = Message::QueueState {
            os: OsKind::Windows,
            report: DetectorReport::stuck(4, "JOB-9@winhead.eridani.qgg.hud.ac.uk"),
        };
        let line = m.encode();
        assert_eq!(line, "STATE windows 10004JOB-9@winhead.eridani.qgg.hud.ac.uk");
        assert_eq!(Message::decode(&line).unwrap(), m);
    }

    #[test]
    fn idle_state_line() {
        let m = Message::QueueState {
            os: OsKind::Linux,
            report: DetectorReport::not_stuck(),
        };
        assert_eq!(m.encode(), "STATE linux 00000none");
    }

    #[test]
    fn reboot_order_roundtrip() {
        let m = Message::RebootOrder {
            target: OsKind::Windows,
            count: 3,
            seq: 7,
        };
        assert_eq!(m.encode(), "REBOOT windows 3 7");
        assert_eq!(Message::decode("REBOOT windows 3 7").unwrap(), m);
    }

    #[test]
    fn ack_roundtrip() {
        let m = Message::OrderAck { queued: 2, seq: 7 };
        assert_eq!(m.encode(), "ACK 2 7");
        assert_eq!(Message::decode("ACK 2 7\r\n").unwrap(), m);
    }

    #[test]
    fn legacy_lines_without_seq_decode_as_zero() {
        assert_eq!(
            Message::decode("REBOOT windows 3").unwrap(),
            Message::RebootOrder {
                target: OsKind::Windows,
                count: 3,
                seq: 0
            }
        );
        assert_eq!(
            Message::decode("ACK 2").unwrap(),
            Message::OrderAck { queued: 2, seq: 0 }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Message::decode("HELLO world"),
            Err(ProtoError::UnknownVerb(_))
        ));
        assert!(matches!(
            Message::decode("REBOOT windows"),
            Err(ProtoError::BadFields(_))
        ));
        assert!(matches!(
            Message::decode("REBOOT beos 3"),
            Err(ProtoError::BadFields(_))
        ));
        assert!(matches!(
            Message::decode("STATE linux 2zzzznone"),
            Err(ProtoError::BadReport(_))
        ));
        assert!(matches!(
            Message::decode("ACK lots"),
            Err(ProtoError::BadFields(_))
        ));
        assert!(matches!(
            Message::decode("REBOOT windows 3 x"),
            Err(ProtoError::BadFields(_))
        ));
        assert!(matches!(
            Message::decode("REBOOT windows 3 7 9"),
            Err(ProtoError::BadFields(_))
        ));
    }

    #[test]
    fn grid_report_roundtrip() {
        let m = Message::GridReport {
            member: "tauceti".to_string(),
            report: ClusterReport {
                at: SimTime::from_secs(90),
                linux_queued: 3,
                windows_queued: 1,
                linux_free_cores: 12,
                windows_free_cores: 0,
                linux_nodes: 10,
                windows_nodes: 6,
                booting: 2,
                quarantined: 1,
                torn_down: 4,
                energy_wh: 123456,
            },
        };
        let line = m.encode();
        assert_eq!(line, "GRID tauceti 90000 3 1 12 0 10 6 2 q=1 td=4 ewh=123456");
        assert_eq!(Message::decode(&line).unwrap(), m);
    }

    #[test]
    fn legacy_grid_lines_without_quarantine_decode_as_zero() {
        // An 8-number line from a pre-quarantine peer still decodes.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!(report.booting, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.torn_down, 0);
        assert_eq!(report.energy_wh, 0);
    }

    #[test]
    fn legacy_grid_lines_without_backend_fields_decode_as_zero() {
        // A 9-number line from a pre-elastic peer still decodes, with
        // the quarantine counter intact and the backend pair zeroed.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 1").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.torn_down, 0);
        assert_eq!(report.energy_wh, 0);
    }

    #[test]
    fn legacy_positional_grid_lines_keep_their_old_meaning() {
        // 10-number vintage: quarantine + teardown, no energy.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 1 4").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!((report.quarantined, report.torn_down, report.energy_wh), (1, 4, 0));
        // 11-number vintage: the full pre-tag line.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 1 4 99").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!((report.quarantined, report.torn_down, report.energy_wh), (1, 4, 99));
    }

    #[test]
    fn tagged_fields_decode_independently_of_order_and_presence() {
        // The quarantine+energy vintage the positional scheme misread:
        // `energy_wh` no longer lands in the teardown counter.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 q=2 ewh=777").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!((report.quarantined, report.torn_down, report.energy_wh), (2, 0, 777));
        // Tag order is free; unset tags read as 0.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 ewh=5 q=1").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!((report.quarantined, report.torn_down, report.energy_wh), (1, 0, 5));
        // Unknown tags from a newer vintage are skipped, not fatal.
        let m = Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 td=3 zz=abc").unwrap();
        let Message::GridReport { report, .. } = m else {
            panic!("expected a grid report");
        };
        assert_eq!((report.quarantined, report.torn_down, report.energy_wh), (0, 3, 0));
    }

    #[test]
    fn every_vintage_round_trips_through_the_tagged_encoder() {
        // Decode each legacy line, re-encode, decode again: the report
        // must survive unchanged (the cross-vintage gossip path).
        for line in [
            "GRID tauceti 90000 3 1 12 0 10 6 2",
            "GRID tauceti 90000 3 1 12 0 10 6 2 1",
            "GRID tauceti 90000 3 1 12 0 10 6 2 1 4",
            "GRID tauceti 90000 3 1 12 0 10 6 2 1 4 99",
            "GRID tauceti 90000 3 1 12 0 10 6 2 q=2 ewh=777",
        ] {
            let m = Message::decode(line).unwrap();
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "vintage {line:?}");
        }
    }

    #[test]
    fn grid_report_rejects_malformed_lines() {
        // too few fields
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 12 0 10 6"),
            Err(ProtoError::BadFields(_))
        ));
        // too many fields
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 5 8 9 44"),
            Err(ProtoError::BadFields(_))
        ));
        // non-numeric field
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 twelve 0 10 6 2"),
            Err(ProtoError::BadFields(_))
        ));
        // counter exceeding u32
        assert!(matches!(
            Message::decode("GRID tauceti 90000 99999999999 1 12 0 10 6 2"),
            Err(ProtoError::BadFields(_))
        ));
        // missing payload entirely
        assert!(matches!(
            Message::decode("GRID tauceti"),
            Err(ProtoError::BadFields(_))
        ));
        // positional number after a tagged field
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 q=1 5"),
            Err(ProtoError::BadFields(_))
        ));
        // malformed value in a known tag
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 q=lots"),
            Err(ProtoError::BadFields(_))
        ));
        // tagged line must carry exactly the 8 universal numbers
        assert!(matches!(
            Message::decode("GRID tauceti 90000 3 1 12 0 10 6 2 1 q=1"),
            Err(ProtoError::BadFields(_))
        ));
    }

    #[test]
    fn serve_frames_round_trip_with_embedded_spaces() {
        let m = Message::Serve {
            payload: r#"{"schema":"dualboot/v1","kind":"submit","note":"two words"}"#.to_string(),
        };
        let line = m.encode();
        assert!(line.starts_with("SERVE {"));
        assert_eq!(Message::decode(&line).unwrap(), m);
        // An empty payload is malformed, not an empty document.
        assert!(matches!(
            Message::decode("SERVE "),
            Err(ProtoError::BadFields(_))
        ));
        // Bare verb falls through to the unknown-verb path.
        assert!(matches!(
            Message::decode("SERVE"),
            Err(ProtoError::UnknownVerb(_))
        ));
    }

    #[test]
    fn trailing_newline_tolerated() {
        let m = Message::decode("STATE linux 00000none\n").unwrap();
        assert!(matches!(m, Message::QueueState { os: OsKind::Linux, .. }));
    }
}
