//! Message transports.
//!
//! Two implementations of the same [`Transport`] interface:
//!
//! * [`InProcTransport`] — a crossbeam channel pair. The deterministic
//!   simulation uses this; delivery order is FIFO and instantaneous.
//! * [`TcpTransport`] — a real `std::net` socket speaking the same
//!   newline-delimited [`Message`] lines, used by the threaded
//!   integration test (`tcp_daemons`) to demonstrate the protocol over an
//!   actual TCP connection like the paper's C++/Cygwin communicator.
//!
//! Both ends are symmetric: the protocol has no client/server roles, only
//! two communicators exchanging lines.

use crate::proto::{Message, ProtoError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up cleanly (EOF on a frame boundary, or the channel
    /// closed).
    Disconnected,
    /// The peer half-closed mid-frame: EOF arrived with a partial line
    /// buffered. Distinct from [`TransportError::Disconnected`] so
    /// receivers can tell a clean goodbye from a torn stream.
    TruncatedFrame,
    /// The peer sent a line longer than [`MAX_FRAME_BYTES`] without a
    /// newline. The connection is resynchronised to the next newline; the
    /// oversized frame itself is lost.
    Oversized {
        /// Bytes buffered when the limit tripped.
        buffered: usize,
    },
    /// An I/O error on the socket.
    Io(std::io::Error),
    /// The peer sent a line the protocol cannot parse.
    Protocol(ProtoError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TruncatedFrame => {
                write!(f, "peer disconnected mid-frame (truncated line)")
            }
            TransportError::Oversized { buffered } => {
                write!(
                    f,
                    "frame exceeds {MAX_FRAME_BYTES} bytes ({buffered} buffered without newline)"
                )
            }
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional message link between two communicators.
pub trait Transport {
    /// Send a message to the peer.
    fn send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Receive the next pending message without blocking; `Ok(None)` when
    /// nothing is waiting.
    fn try_recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Receive, blocking up to `timeout`; `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError>;
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

/// One end of an in-process channel pair.
#[derive(Debug)]
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

/// Create a connected pair of in-process transports.
///
/// ```
/// use dualboot_bootconf::os::OsKind;
/// use dualboot_net::proto::Message;
/// use dualboot_net::transport::{in_proc_pair, Transport};
///
/// let (mut linux_head, mut windows_head) = in_proc_pair();
/// windows_head
///     .send(&Message::RebootOrder { target: OsKind::Linux, count: 2, seq: 1 })
///     .unwrap();
/// assert!(matches!(
///     linux_head.try_recv().unwrap(),
///     Some(Message::RebootOrder { count: 2, .. })
/// ));
/// ```
pub fn in_proc_pair() -> (InProcTransport, InProcTransport) {
    let (tx_a, rx_b) = unbounded();
    let (tx_b, rx_a) = unbounded();
    (
        InProcTransport { tx: tx_a, rx: rx_a },
        InProcTransport { tx: tx_b, rx: rx_b },
    )
}

impl Transport for InProcTransport {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.tx
            .send(msg.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// Longest line a [`TcpTransport`] will buffer while hunting for a
/// newline. Generous for every protocol message (the largest are serve
/// frames carrying an embedded JSON document); a peer exceeding it gets
/// [`TransportError::Oversized`] instead of growing the buffer without
/// bound.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A newline-delimited TCP message link.
///
/// Framing is torn-proof: a read timeout mid-line keeps the partial
/// prefix buffered for the next call (the naive `BufReader::read_line`
/// approach silently discarded it, corrupting the stream), EOF with a
/// partial line buffered surfaces as [`TransportError::TruncatedFrame`]
/// rather than a clean disconnect, and a line that exceeds
/// [`MAX_FRAME_BYTES`] without a newline reports
/// [`TransportError::Oversized`] and resynchronises at the next newline
/// instead of hanging or ballooning.
#[derive(Debug)]
pub struct TcpTransport {
    writer: TcpStream,
    reader: TcpStream,
    /// Bytes received but not yet consumed as complete lines.
    buf: Vec<u8>,
    /// An oversized line is being discarded: swallow bytes until the
    /// next newline before resuming normal framing.
    resyncing: bool,
}

impl TcpTransport {
    /// Connect to a listening communicator.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(TransportError::Io)?;
        Self::from_stream(stream)
    }

    /// Listen on `addr` and accept exactly one peer (the paper's topology:
    /// one Linux head, one Windows head). Returns the bound address (useful
    /// with port 0) via the provided listener.
    pub fn listen(addr: SocketAddr) -> Result<(TcpListener, SocketAddr), TransportError> {
        let listener = TcpListener::bind(addr).map_err(TransportError::Io)?;
        let local = listener.local_addr().map_err(TransportError::Io)?;
        Ok((listener, local))
    }

    /// Accept one peer on a listener created by [`TcpTransport::listen`].
    pub fn accept(listener: &TcpListener) -> Result<Self, TransportError> {
        let (stream, _) = listener.accept().map_err(TransportError::Io)?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(TransportError::Io)?;
        let reader = stream.try_clone().map_err(TransportError::Io)?;
        Ok(TcpTransport {
            writer: stream,
            reader,
            buf: Vec::new(),
            resyncing: false,
        })
    }

    /// Pop the first complete line out of `buf`, if any (sans newline).
    fn take_buffered_line(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
        line.pop(); // the newline itself
        if self.resyncing {
            // This line is the tail of an oversized frame: swallow it and
            // resume normal framing with whatever follows.
            self.resyncing = false;
            return self.take_buffered_line();
        }
        Some(line)
    }

    fn read_line_with_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(line) = self.take_buffered_line() {
                let text = String::from_utf8_lossy(&line);
                return Message::decode(&text).map(Some).map_err(TransportError::Protocol);
            }
            if self.resyncing {
                // Everything buffered belongs to the oversized frame
                // still in flight: discard it and keep hunting for the
                // newline that ends it.
                self.buf.clear();
            } else if self.buf.len() > MAX_FRAME_BYTES {
                let buffered = self.buf.len();
                self.buf.clear();
                self.resyncing = true;
                return Err(TransportError::Oversized { buffered });
            }

            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None); // timed out; partial line stays buffered
            }
            // A zero read timeout means "block forever" to the OS, so
            // clamp the wait to at least a millisecond.
            self.reader
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(TransportError::Io)?;
            let mut chunk = [0u8; 4096];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    // EOF. Clean only on a frame boundary.
                    return if self.buf.is_empty() && !self.resyncing {
                        Err(TransportError::Disconnected)
                    } else {
                        self.buf.clear();
                        self.resyncing = false;
                        Err(TransportError::TruncatedFrame)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None); // partial line (if any) stays buffered
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let mut line = msg.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(TransportError::Io)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        // A very short timeout approximates non-blocking reads portably.
        self.read_line_with_timeout(Duration::from_millis(1))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.read_line_with_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::DetectorReport;
    use dualboot_bootconf::os::OsKind;

    fn state_msg() -> Message {
        Message::QueueState {
            os: OsKind::Windows,
            report: DetectorReport::stuck(8, "JOB-3@winhead"),
        }
    }

    #[test]
    fn in_proc_roundtrip() {
        let (mut a, mut b) = in_proc_pair();
        a.send(&state_msg()).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(state_msg()));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn in_proc_is_bidirectional_and_fifo() {
        let (mut a, mut b) = in_proc_pair();
        a.send(&Message::RebootOrder {
            target: OsKind::Linux,
            count: 1,
            seq: 1,
        })
        .unwrap();
        a.send(&Message::RebootOrder {
            target: OsKind::Linux,
            count: 2,
            seq: 2,
        })
        .unwrap();
        b.send(&Message::OrderAck { queued: 1, seq: 1 }).unwrap();
        assert!(matches!(
            b.try_recv().unwrap(),
            Some(Message::RebootOrder { count: 1, .. })
        ));
        assert!(matches!(
            b.try_recv().unwrap(),
            Some(Message::RebootOrder { count: 2, .. })
        ));
        assert!(matches!(a.try_recv().unwrap(), Some(Message::OrderAck { queued: 1, .. })));
    }

    #[test]
    fn in_proc_disconnect_detected() {
        let (mut a, b) = in_proc_pair();
        drop(b);
        assert!(matches!(
            a.send(&state_msg()),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn in_proc_recv_timeout_expires() {
        let (_a, mut b) = in_proc_pair();
        let got = b.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn tcp_roundtrip_same_bytes() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let handle = std::thread::spawn(move || {
            let mut server = TcpTransport::accept(&listener).unwrap();
            let msg = server
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("message arrives");
            server.send(&Message::OrderAck { queued: 7, seq: 7 }).unwrap();
            msg
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&state_msg()).unwrap();
        let ack = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ack, Some(Message::OrderAck { queued: 7, seq: 7 }));
        assert_eq!(handle.join().unwrap(), state_msg());
    }

    #[test]
    fn tcp_try_recv_empty_is_none() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let _server = t.join().unwrap();
        assert!(client.try_recv().unwrap().is_none());
    }

    #[test]
    fn tcp_garbage_line_is_a_protocol_error() {
        use std::io::Write as _;
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let (mut raw, _) = listener.accept().unwrap();
            raw.write_all(b"NOT A MESSAGE\n").unwrap();
            raw
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let _raw = t.join().unwrap();
        let r = client.recv_timeout(Duration::from_secs(2));
        assert!(matches!(r, Err(TransportError::Protocol(_))));
    }

    #[test]
    fn tcp_handles_many_messages_in_order() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let mut server = TcpTransport::accept(&listener).unwrap();
            for k in 0..200 {
                server
                    .send(&Message::OrderAck {
                        queued: k,
                        seq: u64::from(k),
                    })
                    .unwrap();
            }
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        for k in 0..200 {
            let got = client.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(
                got,
                Some(Message::OrderAck {
                    queued: k,
                    seq: u64::from(k),
                })
            );
        }
        t.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let server = t.join().unwrap();
        drop(server);
        // Reads eventually observe EOF.
        let r = client.recv_timeout(Duration::from_secs(1));
        assert!(matches!(r, Err(TransportError::Disconnected)));
    }

    /// The historical framing bug: a read timeout landing mid-line used
    /// to discard the buffered prefix, corrupting the stream. The prefix
    /// must survive the timeout and complete on the next call.
    #[test]
    fn tcp_partial_line_survives_a_timeout() {
        use std::io::Write as _;
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let (mut raw, _) = listener.accept().unwrap();
            raw.write_all(b"ACK 2").unwrap(); // first half, no newline
            raw.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            raw.write_all(b" 7\nACK 3 8\n").unwrap();
            raw
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        // This recv times out with "ACK 2" buffered.
        assert_eq!(client.recv_timeout(Duration::from_millis(30)).unwrap(), None);
        // The frame completes intact — no bytes lost, no corruption.
        let got = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, Some(Message::OrderAck { queued: 2, seq: 7 }));
        let got = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, Some(Message::OrderAck { queued: 3, seq: 8 }));
        t.join().unwrap();
    }

    /// EOF mid-line is a torn stream, not a clean goodbye.
    #[test]
    fn tcp_eof_mid_frame_is_truncated_not_disconnected() {
        use std::io::Write as _;
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let (mut raw, _) = listener.accept().unwrap();
            raw.write_all(b"ACK 9 9\nACK 1").unwrap(); // half-close mid-line
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        t.join().unwrap();
        // The complete first frame still arrives...
        let got = client.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, Some(Message::OrderAck { queued: 9, seq: 9 }));
        // ...then the torn tail surfaces as TruncatedFrame.
        let r = client.recv_timeout(Duration::from_secs(2));
        assert!(matches!(r, Err(TransportError::TruncatedFrame)), "{r:?}");
    }

    /// A newline-free flood larger than the frame limit errors instead of
    /// buffering without bound, and the link resynchronises at the next
    /// newline.
    #[test]
    fn tcp_oversized_line_errors_and_resyncs() {
        use std::io::Write as _;
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let (mut raw, _) = listener.accept().unwrap();
            let junk = vec![b'x'; MAX_FRAME_BYTES + 64 * 1024];
            raw.write_all(&junk).unwrap();
            raw.write_all(b"\nACK 5 5\n").unwrap();
            raw
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        // The flood trips the limit...
        let mut oversized_seen = false;
        for _ in 0..50 {
            match client.recv_timeout(Duration::from_millis(500)) {
                Err(TransportError::Oversized { buffered }) => {
                    assert!(buffered > MAX_FRAME_BYTES);
                    oversized_seen = true;
                    break;
                }
                Ok(None) => continue, // slow write: keep polling
                other => panic!("expected Oversized, got {other:?}"),
            }
        }
        assert!(oversized_seen, "oversized frame never reported");
        // ...and the frame after the terminating newline still decodes.
        let got = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, Some(Message::OrderAck { queued: 5, seq: 5 }));
        t.join().unwrap();
    }
}
