//! Message transports.
//!
//! Two implementations of the same [`Transport`] interface:
//!
//! * [`InProcTransport`] — a crossbeam channel pair. The deterministic
//!   simulation uses this; delivery order is FIFO and instantaneous.
//! * [`TcpTransport`] — a real `std::net` socket speaking the same
//!   newline-delimited [`Message`] lines, used by the threaded
//!   integration test (`tcp_daemons`) to demonstrate the protocol over an
//!   actual TCP connection like the paper's C++/Cygwin communicator.
//!
//! Both ends are symmetric: the protocol has no client/server roles, only
//! two communicators exchanging lines.

use crate::proto::{Message, ProtoError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up or the channel closed.
    Disconnected,
    /// An I/O error on the socket.
    Io(std::io::Error),
    /// The peer sent a line the protocol cannot parse.
    Protocol(ProtoError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional message link between two communicators.
pub trait Transport {
    /// Send a message to the peer.
    fn send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Receive the next pending message without blocking; `Ok(None)` when
    /// nothing is waiting.
    fn try_recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Receive, blocking up to `timeout`; `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError>;
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

/// One end of an in-process channel pair.
#[derive(Debug)]
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

/// Create a connected pair of in-process transports.
///
/// ```
/// use dualboot_bootconf::os::OsKind;
/// use dualboot_net::proto::Message;
/// use dualboot_net::transport::{in_proc_pair, Transport};
///
/// let (mut linux_head, mut windows_head) = in_proc_pair();
/// windows_head
///     .send(&Message::RebootOrder { target: OsKind::Linux, count: 2, seq: 1 })
///     .unwrap();
/// assert!(matches!(
///     linux_head.try_recv().unwrap(),
///     Some(Message::RebootOrder { count: 2, .. })
/// ));
/// ```
pub fn in_proc_pair() -> (InProcTransport, InProcTransport) {
    let (tx_a, rx_b) = unbounded();
    let (tx_b, rx_a) = unbounded();
    (
        InProcTransport { tx: tx_a, rx: rx_a },
        InProcTransport { tx: tx_b, rx: rx_b },
    )
}

impl Transport for InProcTransport {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.tx
            .send(msg.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// A newline-delimited TCP message link.
#[derive(Debug)]
pub struct TcpTransport {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpTransport {
    /// Connect to a listening communicator.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(TransportError::Io)?;
        Self::from_stream(stream)
    }

    /// Listen on `addr` and accept exactly one peer (the paper's topology:
    /// one Linux head, one Windows head). Returns the bound address (useful
    /// with port 0) via the provided listener.
    pub fn listen(addr: SocketAddr) -> Result<(TcpListener, SocketAddr), TransportError> {
        let listener = TcpListener::bind(addr).map_err(TransportError::Io)?;
        let local = listener.local_addr().map_err(TransportError::Io)?;
        Ok((listener, local))
    }

    /// Accept one peer on a listener created by [`TcpTransport::listen`].
    pub fn accept(listener: &TcpListener) -> Result<Self, TransportError> {
        let (stream, _) = listener.accept().map_err(TransportError::Io)?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(TransportError::Io)?;
        let reader_stream = stream.try_clone().map_err(TransportError::Io)?;
        Ok(TcpTransport {
            writer: stream,
            reader: BufReader::new(reader_stream),
        })
    }

    fn read_line_with_timeout(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<Message>, TransportError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(TransportError::Io)?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(TransportError::Disconnected),
            Ok(_) => Message::decode(&line)
                .map(Some)
                .map_err(TransportError::Protocol),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(TransportError::Io(e)),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let mut line = msg.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(TransportError::Io)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        // A very short timeout approximates non-blocking reads portably.
        self.read_line_with_timeout(Some(Duration::from_millis(1)))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.read_line_with_timeout(Some(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::DetectorReport;
    use dualboot_bootconf::os::OsKind;

    fn state_msg() -> Message {
        Message::QueueState {
            os: OsKind::Windows,
            report: DetectorReport::stuck(8, "JOB-3@winhead"),
        }
    }

    #[test]
    fn in_proc_roundtrip() {
        let (mut a, mut b) = in_proc_pair();
        a.send(&state_msg()).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(state_msg()));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn in_proc_is_bidirectional_and_fifo() {
        let (mut a, mut b) = in_proc_pair();
        a.send(&Message::RebootOrder {
            target: OsKind::Linux,
            count: 1,
            seq: 1,
        })
        .unwrap();
        a.send(&Message::RebootOrder {
            target: OsKind::Linux,
            count: 2,
            seq: 2,
        })
        .unwrap();
        b.send(&Message::OrderAck { queued: 1, seq: 1 }).unwrap();
        assert!(matches!(
            b.try_recv().unwrap(),
            Some(Message::RebootOrder { count: 1, .. })
        ));
        assert!(matches!(
            b.try_recv().unwrap(),
            Some(Message::RebootOrder { count: 2, .. })
        ));
        assert!(matches!(a.try_recv().unwrap(), Some(Message::OrderAck { queued: 1, .. })));
    }

    #[test]
    fn in_proc_disconnect_detected() {
        let (mut a, b) = in_proc_pair();
        drop(b);
        assert!(matches!(
            a.send(&state_msg()),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn in_proc_recv_timeout_expires() {
        let (_a, mut b) = in_proc_pair();
        let got = b.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn tcp_roundtrip_same_bytes() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let handle = std::thread::spawn(move || {
            let mut server = TcpTransport::accept(&listener).unwrap();
            let msg = server
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("message arrives");
            server.send(&Message::OrderAck { queued: 7, seq: 7 }).unwrap();
            msg
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&state_msg()).unwrap();
        let ack = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ack, Some(Message::OrderAck { queued: 7, seq: 7 }));
        assert_eq!(handle.join().unwrap(), state_msg());
    }

    #[test]
    fn tcp_try_recv_empty_is_none() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let _server = t.join().unwrap();
        assert!(client.try_recv().unwrap().is_none());
    }

    #[test]
    fn tcp_garbage_line_is_a_protocol_error() {
        use std::io::Write as _;
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let (mut raw, _) = listener.accept().unwrap();
            raw.write_all(b"NOT A MESSAGE\n").unwrap();
            raw
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let _raw = t.join().unwrap();
        let r = client.recv_timeout(Duration::from_secs(2));
        assert!(matches!(r, Err(TransportError::Protocol(_))));
    }

    #[test]
    fn tcp_handles_many_messages_in_order() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || {
            let mut server = TcpTransport::accept(&listener).unwrap();
            for k in 0..200 {
                server
                    .send(&Message::OrderAck {
                        queued: k,
                        seq: u64::from(k),
                    })
                    .unwrap();
            }
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        for k in 0..200 {
            let got = client.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(
                got,
                Some(Message::OrderAck {
                    queued: k,
                    seq: u64::from(k),
                })
            );
        }
        t.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (listener, addr) = TcpTransport::listen("127.0.0.1:0".parse().unwrap()).unwrap();
        let t = std::thread::spawn(move || TcpTransport::accept(&listener).unwrap());
        let mut client = TcpTransport::connect(addr).unwrap();
        let server = t.join().unwrap();
        drop(server);
        // Reads eventually observe EOF.
        let r = client.recv_timeout(Duration::from_secs(1));
        assert!(matches!(r, Err(TransportError::Disconnected)));
    }
}
