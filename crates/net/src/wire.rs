//! The Figure-5 detector report format.
//!
//! The detectors print a fixed-position character string; the first line
//! of output is "the information for the communicator":
//!
//! | Position | Definition        | Output                 |
//! |----------|-------------------|------------------------|
//! | 0        | queue state       | `1` = stuck, `0` other |
//! | 1–4      | needed CPUs       | default `0000`         |
//! | 5–67     | stuck job ID      | default `none`         |
//! | 68–      | undefined         |                        |
//!
//! Figure 6 shows both shapes in the wild:
//! `00000none` (idle/running) and `100041191.eridani.qgg.hud.ac.uk`
//! (stuck, 4 CPUs needed, job `1191.eridani.qgg.hud.ac.uk`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum length of the job-id field (positions 5–67 inclusive).
pub const MAX_JOB_ID_LEN: usize = 63;

/// Largest CPU count the 4-digit field can carry.
pub const MAX_CPUS: u32 = 9999;

/// A decoded detector report.
///
/// ```
/// use dualboot_net::wire::DetectorReport;
///
/// // Figure 6's outputs, byte for byte:
/// assert_eq!(DetectorReport::not_stuck().encode().unwrap(), "00000none");
/// let stuck = DetectorReport::stuck(4, "1191.eridani.qgg.hud.ac.uk");
/// assert_eq!(stuck.encode().unwrap(), "100041191.eridani.qgg.hud.ac.uk");
/// assert_eq!(DetectorReport::decode("00000none").unwrap(), DetectorReport::not_stuck());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorReport {
    /// `true` when the scheduler is stuck (no job running, jobs queued).
    pub stuck: bool,
    /// CPUs needed by the first queued job (0 when not stuck).
    pub needed_cpus: u32,
    /// Id of the stuck job (`None` encodes as the literal `none`).
    pub stuck_job_id: Option<String>,
}

/// Errors decoding a report string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the 9-byte minimum (`0` + `0000` + `none`).
    TooShort(usize),
    /// Position 0 was not `0` or `1`.
    BadState(char),
    /// Positions 1–4 were not digits.
    BadCpus(String),
    /// Job id exceeded 63 bytes on encode.
    JobIdTooLong(usize),
    /// CPU count exceeded 9999 on encode.
    CpusOutOfRange(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooShort(n) => write!(f, "report too short: {n} bytes"),
            WireError::BadState(c) => write!(f, "bad state byte {c:?}"),
            WireError::BadCpus(s) => write!(f, "bad CPU field {s:?}"),
            WireError::JobIdTooLong(n) => write!(f, "job id too long: {n} bytes"),
            WireError::CpusOutOfRange(n) => write!(f, "CPU count {n} exceeds 9999"),
        }
    }
}

impl std::error::Error for WireError {}

impl DetectorReport {
    /// The idle/running report (`00000none`, Figure 6 outputs 1 and 2).
    pub fn not_stuck() -> DetectorReport {
        DetectorReport {
            stuck: false,
            needed_cpus: 0,
            stuck_job_id: None,
        }
    }

    /// A stuck report for the given head-of-queue job.
    pub fn stuck(needed_cpus: u32, job_id: impl Into<String>) -> DetectorReport {
        DetectorReport {
            stuck: true,
            needed_cpus,
            stuck_job_id: Some(job_id.into()),
        }
    }

    /// Encode into the Figure-5 fixed-position string.
    pub fn encode(&self) -> Result<String, WireError> {
        if self.needed_cpus > MAX_CPUS {
            return Err(WireError::CpusOutOfRange(self.needed_cpus));
        }
        let id = self.stuck_job_id.as_deref().unwrap_or("none");
        if id.len() > MAX_JOB_ID_LEN {
            return Err(WireError::JobIdTooLong(id.len()));
        }
        Ok(format!(
            "{}{:04}{}",
            if self.stuck { '1' } else { '0' },
            self.needed_cpus,
            id
        ))
    }

    /// Decode a Figure-5 string. Bytes past position 67 are "undefined"
    /// and ignored, per the table. The minimum is 6 bytes: the state
    /// byte, the 4-digit CPU field, and at least one id byte.
    ///
    /// The positions are *byte* positions, and the report arrives off the
    /// wire — so the decoder works on bytes throughout. A multi-byte
    /// character anywhere in the fixed prefix is a malformed report
    /// (`BadState`/`BadCpus`), never a panic; one straddling the id
    /// truncation point is replaced lossily.
    pub fn decode(s: &str) -> Result<DetectorReport, WireError> {
        let b = s.as_bytes();
        if b.len() < 6 {
            return Err(WireError::TooShort(b.len()));
        }
        let stuck = match b[0] {
            b'0' => false,
            b'1' => true,
            c => return Err(WireError::BadState(c as char)),
        };
        let cpus_field = &b[1..5];
        if !cpus_field.iter().all(u8::is_ascii_digit) {
            return Err(WireError::BadCpus(
                String::from_utf8_lossy(cpus_field).into_owned(),
            ));
        }
        let needed_cpus = cpus_field
            .iter()
            .fold(0u32, |acc, d| acc * 10 + u32::from(d - b'0'));
        let id_end = b.len().min(5 + MAX_JOB_ID_LEN);
        let id = String::from_utf8_lossy(&b[5..id_end]);
        let stuck_job_id = if id == "none" {
            None
        } else {
            Some(id.into_owned())
        };
        Ok(DetectorReport {
            stuck,
            needed_cpus,
            stuck_job_id,
        })
    }
}

impl fmt::Display for DetectorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.encode() {
            Ok(s) => write!(f, "{s}"),
            Err(_) => write!(f, "<unencodable report>"),
        }
    }
}

impl FromStr for DetectorReport {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DetectorReport::decode(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_idle_output() {
        // Outputs 1 and 2 of Figure 6: `00000none`.
        assert_eq!(DetectorReport::not_stuck().encode().unwrap(), "00000none");
    }

    #[test]
    fn fig6_stuck_output() {
        // Output 3 of Figure 6: stuck, 4 CPUs, job 1191.
        let r = DetectorReport::stuck(4, "1191.eridani.qgg.hud.ac.uk");
        assert_eq!(r.encode().unwrap(), "100041191.eridani.qgg.hud.ac.uk");
    }

    #[test]
    fn decode_fig6_outputs() {
        let idle = DetectorReport::decode("00000none").unwrap();
        assert_eq!(idle, DetectorReport::not_stuck());
        let stuck = DetectorReport::decode("100041191.eridani.qgg.hud.ac.uk").unwrap();
        assert!(stuck.stuck);
        assert_eq!(stuck.needed_cpus, 4);
        assert_eq!(
            stuck.stuck_job_id.as_deref(),
            Some("1191.eridani.qgg.hud.ac.uk")
        );
    }

    #[test]
    fn roundtrip_various() {
        for r in [
            DetectorReport::not_stuck(),
            DetectorReport::stuck(64, "1.srv"),
            DetectorReport::stuck(9999, "x".repeat(63)),
            DetectorReport::stuck(1, "j"),
            DetectorReport {
                stuck: false,
                needed_cpus: 12,
                stuck_job_id: Some("queued-but-running.too".to_string()),
            },
        ] {
            let enc = r.encode().unwrap();
            assert_eq!(DetectorReport::decode(&enc).unwrap(), r);
        }
    }

    #[test]
    fn decode_ignores_undefined_tail() {
        // Positions 68+ are "undefined": a 63-byte id plus trailing junk.
        let id = "j".repeat(63);
        let s = format!("1{:04}{}GARBAGE", 8, id);
        let r = DetectorReport::decode(&s).unwrap();
        assert_eq!(r.stuck_job_id.as_deref(), Some(id.as_str()));
    }

    #[test]
    fn encode_rejects_oversize() {
        let too_long = DetectorReport::stuck(1, "x".repeat(64));
        assert_eq!(too_long.encode(), Err(WireError::JobIdTooLong(64)));
        let too_many = DetectorReport::stuck(10_000, "j");
        assert_eq!(too_many.encode(), Err(WireError::CpusOutOfRange(10_000)));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(
            DetectorReport::decode("10004"),
            Err(WireError::TooShort(5))
        );
        // 8 bytes parse, but the digit field is shifted: caught as BadCpus.
        assert_eq!(
            DetectorReport::decode("0000none"),
            Err(WireError::BadCpus("000n".to_string()))
        );
        assert_eq!(DetectorReport::decode("200001none"), Err(WireError::BadState('2')));
        assert_eq!(
            DetectorReport::decode("0abcdnone"),
            Err(WireError::BadCpus("abcd".to_string()))
        );
        // A sign is not a digit, even though `str::parse::<u32>` takes it.
        assert_eq!(
            DetectorReport::decode("0+123none"),
            Err(WireError::BadCpus("+123".to_string()))
        );
    }

    #[test]
    fn decode_survives_multibyte_utf8_at_every_boundary() {
        // Regression: the decoder used `&s[1..5]` / `&s[5..]` string
        // slices, which panic when a multi-byte character straddles a
        // byte boundary. Each case below used to abort the daemon.

        // Multi-byte char inside the CPU field ('€' is 3 bytes, so byte 5
        // lands mid-character).
        assert!(matches!(
            DetectorReport::decode("0€00none"),
            Err(WireError::BadCpus(_))
        ));
        // Multi-byte char at position 0 (state byte).
        assert!(matches!(
            DetectorReport::decode("€0000none"),
            Err(WireError::BadState(_))
        ));
        // Multi-byte char straddling the field boundary at byte 4.
        assert!(matches!(
            DetectorReport::decode("0000€none"),
            Err(WireError::BadCpus(_))
        ));
        // Multi-byte char right after the prefix: a (weird) valid id.
        let r = DetectorReport::decode("10004€job").unwrap();
        assert_eq!(r.stuck_job_id.as_deref(), Some("€job"));
        // Multi-byte char straddling the 63-byte id truncation point:
        // byte 68 falls mid-'€'; the split char is replaced, not a panic.
        let s = format!("10004{}€tail", "x".repeat(MAX_JOB_ID_LEN - 2));
        let r = DetectorReport::decode(&s).unwrap();
        let id = r.stuck_job_id.unwrap();
        assert!(id.starts_with(&"x".repeat(MAX_JOB_ID_LEN - 2)));
        // Length is measured in bytes, not chars: one '€' is 3 bytes.
        assert_eq!(DetectorReport::decode("€"), Err(WireError::TooShort(3)));
        // Two '€' are 6 bytes — long enough, but a bad state byte.
        assert!(matches!(
            DetectorReport::decode("€€"),
            Err(WireError::BadState(_))
        ));
    }

    #[test]
    fn cpus_field_is_zero_padded() {
        let r = DetectorReport::stuck(7, "j.s.t");
        assert!(r.encode().unwrap().starts_with("10007"));
    }

    #[test]
    fn display_matches_encode() {
        let r = DetectorReport::stuck(4, "1191.eridani.qgg.hud.ac.uk");
        assert_eq!(r.to_string(), r.encode().unwrap());
        let parsed: DetectorReport = "00000none".parse().unwrap();
        assert_eq!(parsed, DetectorReport::not_stuck());
    }
}
