//! The grid broker: routing decisions from gossiped state views.
//!
//! The broker never reads a member's schedulers directly. Everything it
//! knows arrives as [`ClusterReport`] gossip lines over the (possibly
//! faulty) wire, so its picture of the grid lags reality by at least one
//! report cycle — more when the link drops or delays lines. The
//! difference between what it *would* do with fresh state and what it
//! does with its view is counted as a stale decision.

use crate::result::BrokerStats;
use crate::spec::{fnv1a, RoutePolicy};
use dualboot_bootconf::os::OsKind;
use dualboot_cluster::{Mode, SimConfig};
use dualboot_des::time::SimTime;
use dualboot_net::proto::ClusterReport;
use dualboot_obs::{ObsEvent, ObsSink, Subsystem};
use dualboot_sched::job::JobRequest;

/// A member's static capabilities — what the broker knows without any
/// gossip at all (the federation's published machine descriptions).
#[derive(Debug, Clone, Copy)]
pub struct MemberCaps {
    /// Compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Nodes that start on Linux.
    pub initial_linux: u32,
    /// Whether the member can ever run Linux jobs.
    pub supports_linux: bool,
    /// Whether the member can ever run Windows jobs.
    pub supports_windows: bool,
}

impl MemberCaps {
    /// Derive capabilities from a member's scenario config.
    pub fn from_config(cfg: &SimConfig) -> MemberCaps {
        let (supports_linux, supports_windows) = match cfg.mode {
            Mode::DualBoot => (true, true),
            Mode::StaticSplit => (
                cfg.initial_linux_nodes > 0,
                cfg.initial_linux_nodes < cfg.nodes,
            ),
            // Both transform Windows jobs into Linux-side work.
            Mode::MonoStable | Mode::Oracle => (true, true),
        };
        MemberCaps {
            nodes: cfg.nodes,
            cores_per_node: cfg.cores_per_node,
            initial_linux: cfg.initial_linux_nodes,
            supports_linux,
            supports_windows,
        }
    }

    fn supports(&self, os: OsKind) -> bool {
        match os {
            OsKind::Linux => self.supports_linux,
            OsKind::Windows => self.supports_windows,
        }
    }

    fn admits(&self, req: &JobRequest, routable_nodes: u32) -> bool {
        req.nodes <= routable_nodes && self.supports(req.os)
    }

    /// The prior used before any gossip arrives: the initial split, all
    /// cores free, nothing queued.
    fn prior(&self) -> ClusterReport {
        let linux_nodes = u32::from(self.initial_linux);
        let windows_nodes = u32::from(self.nodes - self.initial_linux);
        ClusterReport {
            at: SimTime::ZERO,
            linux_queued: 0,
            windows_queued: 0,
            linux_free_cores: linux_nodes * self.cores_per_node,
            windows_free_cores: windows_nodes * self.cores_per_node,
            linux_nodes,
            windows_nodes,
            booting: 0,
            quarantined: 0,
            torn_down: 0,
            energy_wh: 0,
        }
    }
}

/// One OS side of a (viewed or fresh) cluster report.
#[derive(Debug, Clone, Copy)]
struct SideView {
    nodes: u32,
    free_cores: u32,
    queued: u32,
    total_queued: u32,
}

fn side_of(report: &ClusterReport, os: OsKind) -> SideView {
    let total_queued = report.linux_queued + report.windows_queued;
    match os {
        OsKind::Linux => SideView {
            nodes: report.linux_nodes,
            free_cores: report.linux_free_cores,
            queued: report.linux_queued,
            total_queued,
        },
        OsKind::Windows => SideView {
            nodes: report.windows_nodes,
            free_cores: report.windows_free_cores,
            queued: report.windows_queued,
            total_queued,
        },
    }
}

/// The routing broker.
#[derive(Debug)]
pub struct Broker {
    policy: RoutePolicy,
    caps: Vec<MemberCaps>,
    /// Latest accepted view per member: `(received_at, report)`.
    views: Vec<Option<(SimTime, ClusterReport)>>,
    routed: Vec<u64>,
    stats: BrokerStats,
    obs: ObsSink,
}

impl Broker {
    /// A broker over members with the given capabilities (index order
    /// must match the federation's sorted member order).
    pub fn new(policy: RoutePolicy, caps: Vec<MemberCaps>) -> Broker {
        let n = caps.len();
        Broker {
            policy,
            caps,
            views: vec![None; n],
            routed: vec![0; n],
            stats: BrokerStats::default(),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink; routing decisions and report
    /// ingestion are reported on it.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Ingest one gossiped report. Reports are accepted newest-first by
    /// *generation* time, so a delayed line arriving after a fresher one
    /// (or a duplicate) cannot roll the view backwards.
    pub fn observe(&mut self, member: usize, received_at: SimTime, report: ClusterReport) {
        self.stats.reports_received += 1;
        let newer = self.views[member].is_none_or(|(_, old)| old.at <= report.at);
        self.obs.emit(
            Subsystem::Broker,
            None,
            ObsEvent::ReportObserved {
                member: member as u32,
                accepted: newer,
            },
        );
        if newer {
            self.views[member] = Some((received_at, report));
        }
    }

    /// Count a gossip line leaving a member (whether or not it survives
    /// the wire).
    pub fn note_report_sent(&mut self) {
        self.stats.reports_sent += 1;
    }

    /// Route one job at `now`. `fresh` is ground truth for every member
    /// at this instant, used only for accounting: when the view-based
    /// choice differs from the fresh-state choice, the decision counts as
    /// stale (a misroute caused by gossip lag or loss).
    pub fn route(&mut self, req: &JobRequest, now: SimTime, fresh: &[ClusterReport]) -> usize {
        let chosen = self.decide(req, None);
        let ideal = self.decide(req, Some(fresh));
        self.stats.decisions += 1;
        if chosen != ideal {
            self.stats.stale_decisions += 1;
        }
        if self.obs.is_enabled() {
            self.obs.emit(
                Subsystem::Broker,
                None,
                ObsEvent::RouteDecision {
                    job: req.name.clone(),
                    member: chosen as u32,
                    stale: chosen != ideal,
                },
            );
        }
        if let Some((_, report)) = self.views[chosen] {
            self.stats
                .view_staleness_s
                .push(now.saturating_since(report.at).as_secs_f64());
        }
        self.routed[chosen] += 1;
        chosen
    }

    /// Jobs routed to each member so far.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Surrender the accumulated counters.
    pub fn into_stats(self) -> BrokerStats {
        self.stats
    }

    /// The view (or capability prior) the broker holds for `member`.
    fn viewed(&self, member: usize, fresh: Option<&[ClusterReport]>) -> ClusterReport {
        match fresh {
            Some(f) => f[member],
            None => self.views[member]
                .map(|(_, r)| r)
                .unwrap_or_else(|| self.caps[member].prior()),
        }
    }

    /// Queue-depth scoring key: fewer queued on the job's side, then
    /// fewer queued overall, then more free cores on the side, then least
    /// routed so far (spreads a cold start), then member order.
    fn qd_key(
        &self,
        member: usize,
        os: OsKind,
        fresh: Option<&[ClusterReport]>,
    ) -> (u32, u32, u32, u64, usize) {
        let report = self.viewed(member, fresh);
        let side = side_of(&report, os);
        (
            side.queued,
            side.total_queued,
            u32::MAX - side.free_cores,
            self.routed[member],
            member,
        )
    }

    /// A member's routable node count: its static capacity minus whatever
    /// its latest report flags as quarantined by the boot watchdog or
    /// deallocated by an elastic VM pool.
    fn routable_nodes(&self, member: usize, fresh: Option<&[ClusterReport]>) -> u32 {
        let view = self.viewed(member, fresh);
        u32::from(self.caps[member].nodes)
            .saturating_sub(view.quarantined)
            .saturating_sub(view.torn_down)
    }

    /// Pure routing decision against either the gossip views (`None`) or
    /// supplied fresh reports. Deterministic: every tie-break ends at the
    /// member index, and member order is fixed (sorted by name).
    fn decide(&self, req: &JobRequest, fresh: Option<&[ClusterReport]>) -> usize {
        let candidates: Vec<usize> = (0..self.caps.len())
            .filter(|&i| self.caps[i].admits(req, self.routable_nodes(i, fresh)))
            .collect();
        if candidates.is_empty() {
            // Nobody can run it (too wide, or unsupported OS): dump it on
            // the widest member, where it will sit and count as unfinished.
            let mut best = 0;
            for i in 1..self.caps.len() {
                if self.caps[i].nodes > self.caps[best].nodes {
                    best = i;
                }
            }
            return best;
        }
        match self.policy {
            RoutePolicy::Static => {
                let k = fnv1a(&req.name) as usize % candidates.len();
                candidates[k]
            }
            RoutePolicy::QueueDepth => *candidates
                .iter()
                .min_by_key(|&&i| self.qd_key(i, req.os, fresh))
                .expect("candidates non-empty"),
            RoutePolicy::SwitchCoop => {
                // Ready: already booted into the job's OS with room for it.
                let ready: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let side = side_of(&self.viewed(i, fresh), req.os);
                        side.nodes > 0 && side.free_cores >= req.cpus()
                    })
                    .collect();
                if let Some(&best) = ready.iter().min_by_key(|&&i| {
                    let side = side_of(&self.viewed(i, fresh), req.os);
                    (side.queued, self.routed[i], i)
                }) {
                    return best;
                }
                // Warm: at least some nodes on the right OS, even if busy.
                let warm: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| side_of(&self.viewed(i, fresh), req.os).nodes > 0)
                    .collect();
                let pool = if warm.is_empty() { &candidates } else { &warm };
                *pool
                    .iter()
                    .min_by_key(|&&i| self.qd_key(i, req.os, fresh))
                    .expect("pool non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimDuration;

    fn caps(nodes: u32, initial_linux: u32) -> MemberCaps {
        MemberCaps {
            nodes,
            cores_per_node: 4,
            initial_linux,
            supports_linux: true,
            supports_windows: true,
        }
    }

    fn job(name: &str, os: OsKind, nodes: u32) -> JobRequest {
        JobRequest::user(name, os, nodes, 4, SimDuration::from_mins(10))
    }

    fn report(lq: u32, wq: u32, lfree: u32, wfree: u32, ln: u32, wn: u32) -> ClusterReport {
        ClusterReport {
            at: SimTime::from_secs(60),
            linux_queued: lq,
            windows_queued: wq,
            linux_free_cores: lfree,
            windows_free_cores: wfree,
            linux_nodes: ln,
            windows_nodes: wn,
            booting: 0,
            quarantined: 0,
            torn_down: 0,
            energy_wh: 0,
        }
    }

    #[test]
    fn static_routing_ignores_state() {
        let mut b = Broker::new(RoutePolicy::Static, vec![caps(16, 16), caps(16, 0)]);
        let j = job("render-1", OsKind::Windows, 1);
        let first = b.decide(&j, None);
        // Pile every job onto member 0's queue in the view; static must
        // not care.
        b.observe(0, SimTime::from_secs(60), report(50, 50, 0, 0, 8, 8));
        assert_eq!(b.decide(&j, None), first, "static is state-blind");
        // Same name always lands on the same member.
        assert_eq!(b.decide(&j, None), b.decide(&j, None));
    }

    #[test]
    fn queue_depth_prefers_the_shorter_queue() {
        let mut b = Broker::new(RoutePolicy::QueueDepth, vec![caps(16, 8), caps(16, 8)]);
        b.observe(0, SimTime::from_secs(60), report(9, 0, 0, 16, 8, 8));
        b.observe(1, SimTime::from_secs(60), report(1, 0, 8, 16, 8, 8));
        assert_eq!(b.decide(&job("md-1", OsKind::Linux, 1), None), 1);
    }

    #[test]
    fn coop_prefers_the_ready_os() {
        // Member 0 is all-Linux, member 1 all-Windows (per its view); a
        // Windows job must go to member 1 even though both queues are
        // empty.
        let mut b = Broker::new(RoutePolicy::SwitchCoop, vec![caps(16, 16), caps(16, 0)]);
        b.observe(0, SimTime::from_secs(60), report(0, 0, 64, 0, 16, 0));
        b.observe(1, SimTime::from_secs(60), report(0, 0, 0, 64, 0, 16));
        assert_eq!(b.decide(&job("fea-1", OsKind::Windows, 2), None), 1);
        assert_eq!(b.decide(&job("md-2", OsKind::Linux, 2), None), 0);
    }

    #[test]
    fn coop_falls_back_to_queue_depth_when_nobody_is_ready() {
        let mut b = Broker::new(RoutePolicy::SwitchCoop, vec![caps(16, 16), caps(16, 16)]);
        // Neither member has Windows nodes; member 1's Linux queue is
        // shorter so the fallback picks it.
        b.observe(0, SimTime::from_secs(60), report(6, 2, 0, 0, 16, 0));
        b.observe(1, SimTime::from_secs(60), report(1, 1, 0, 0, 16, 0));
        assert_eq!(b.decide(&job("render-9", OsKind::Windows, 1), None), 1);
    }

    #[test]
    fn prior_is_used_before_any_gossip() {
        // No reports at all: coop still sends the Windows job to the
        // member whose *initial* split has Windows nodes.
        let b = Broker::new(RoutePolicy::SwitchCoop, vec![caps(16, 16), caps(16, 0)]);
        assert_eq!(b.decide(&job("render-1", OsKind::Windows, 1), None), 1);
    }

    #[test]
    fn jobs_wider_than_a_member_skip_it() {
        let b = Broker::new(RoutePolicy::QueueDepth, vec![caps(4, 4), caps(16, 16)]);
        assert_eq!(b.decide(&job("wide", OsKind::Linux, 8), None), 1);
        // Wider than everyone: dumped on the widest member.
        assert_eq!(b.decide(&job("too-wide", OsKind::Linux, 64), None), 1);
    }

    #[test]
    fn stale_views_are_counted() {
        let mut b = Broker::new(RoutePolicy::QueueDepth, vec![caps(16, 8), caps(16, 8)]);
        // View says member 0 is empty; ground truth says it is drowning.
        b.observe(0, SimTime::from_secs(10), report(0, 0, 32, 16, 8, 8));
        b.observe(1, SimTime::from_secs(10), report(2, 0, 8, 16, 8, 8));
        let fresh = vec![report(40, 0, 0, 0, 8, 8), report(2, 0, 8, 16, 8, 8)];
        let chosen = b.route(
            &job("md-1", OsKind::Linux, 1),
            SimTime::from_mins(10),
            &fresh,
        );
        assert_eq!(chosen, 0, "the stale view still points at member 0");
        let stats = b.into_stats();
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.stale_decisions, 1);
        assert!(stats.view_staleness_s.mean() > 0.0);
    }

    #[test]
    fn quarantined_nodes_shrink_routable_capacity() {
        let mut b = Broker::new(RoutePolicy::QueueDepth, vec![caps(4, 4), caps(4, 4)]);
        // Member 0 reports 2 of its 4 nodes quarantined: a 3-node job no
        // longer fits there, despite its empty queue.
        let mut r0 = report(0, 0, 8, 0, 2, 0);
        r0.quarantined = 2;
        b.observe(0, SimTime::from_secs(60), r0);
        b.observe(1, SimTime::from_secs(60), report(5, 0, 16, 0, 4, 0));
        assert_eq!(
            b.decide(&job("wide", OsKind::Linux, 3), None),
            1,
            "3 nodes cannot come from a member with 2 quarantined"
        );
        // A narrow job still prefers member 0's shorter queue.
        assert_eq!(b.decide(&job("narrow", OsKind::Linux, 1), None), 0);
    }

    #[test]
    fn torn_down_slots_shrink_routable_capacity() {
        let mut b = Broker::new(RoutePolicy::QueueDepth, vec![caps(4, 4), caps(4, 4)]);
        // Member 0 is an elastic pool shrunk to 2 live VMs: a 3-node job
        // no longer fits there, despite its empty queue.
        let mut r0 = report(0, 0, 8, 0, 2, 0);
        r0.torn_down = 2;
        b.observe(0, SimTime::from_secs(60), r0);
        b.observe(1, SimTime::from_secs(60), report(5, 0, 16, 0, 4, 0));
        assert_eq!(
            b.decide(&job("wide", OsKind::Linux, 3), None),
            1,
            "3 nodes cannot come from a pool holding 2 VMs"
        );
        // A narrow job still prefers member 0's shorter queue.
        assert_eq!(b.decide(&job("narrow", OsKind::Linux, 1), None), 0);
    }

    #[test]
    fn out_of_order_reports_cannot_roll_the_view_back() {
        let mut b = Broker::new(RoutePolicy::QueueDepth, vec![caps(16, 8)]);
        let newer = ClusterReport {
            at: SimTime::from_secs(120),
            linux_queued: 5,
            ..report(0, 0, 32, 16, 8, 8)
        };
        let older = ClusterReport {
            at: SimTime::from_secs(60),
            linux_queued: 0,
            ..report(0, 0, 32, 16, 8, 8)
        };
        b.observe(0, SimTime::from_secs(125), newer);
        b.observe(0, SimTime::from_secs(130), older); // delayed line lands late
        assert_eq!(b.viewed(0, None).linux_queued, 5, "newest generation wins");
    }
}
