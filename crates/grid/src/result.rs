//! Per-run grid results.

use crate::spec::RoutePolicy;
use dualboot_bootconf::os::OsKind;
use dualboot_cluster::SimResult;
use dualboot_des::stats::Welford;
use dualboot_des::time::SimTime;
use dualboot_net::faulty::LinkStats;
use serde::{Deserialize, Serialize};

/// One member cluster's share of a grid run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberResult {
    /// The member's name.
    pub name: String,
    /// Jobs the broker routed here.
    pub routed: u64,
    /// The member's full single-cluster result sheet.
    pub result: SimResult,
}

/// Broker-side counters: how well the gossiped view tracked reality.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BrokerStats {
    /// Routing decisions made (one per job).
    pub decisions: u64,
    /// Decisions that differed from what fresh state would have chosen —
    /// misroutes caused by gossip lag or loss. Always zero under
    /// [`RoutePolicy::Static`] (it never looks).
    pub stale_decisions: u64,
    /// Gossip lines members emitted.
    pub reports_sent: u64,
    /// Gossip lines the broker actually received (≤ sent under drops,
    /// possibly more under duplication).
    pub reports_received: u64,
    /// Age of the view used at each decision, seconds (generation time to
    /// decision time). Empty when no report ever arrived.
    pub view_staleness_s: Welford,
    /// Faults injected on the gossip wires, summed over members.
    #[serde(default)]
    pub link: LinkStats,
}

/// Everything a grid run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// The broker policy that produced this run.
    pub routing: RoutePolicy,
    /// Per-member results, in the federation's sorted name order.
    pub members: Vec<MemberResult>,
    /// Broker and gossip-wire counters.
    pub broker: BrokerStats,
    /// When the federation stopped.
    pub end_time: SimTime,
}

impl GridResult {
    /// Jobs completed across the grid.
    pub fn total_completed(&self) -> u32 {
        self.members
            .iter()
            .map(|m| m.result.total_completed())
            .sum()
    }

    /// Jobs still queued/running when the run stopped.
    pub fn total_unfinished(&self) -> u32 {
        self.members.iter().map(|m| m.result.unfinished).sum()
    }

    /// OS switches across the grid.
    pub fn total_switches(&self) -> u32 {
        self.members.iter().map(|m| m.result.switches).sum()
    }

    /// Total cores across the grid.
    pub fn total_cores(&self) -> u32 {
        self.members.iter().map(|m| m.result.total_cores).sum()
    }

    /// Mean queue wait across every completed job in the grid, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        let mut w = Welford::new();
        for m in &self.members {
            w.merge(&m.result.wait_linux);
            w.merge(&m.result.wait_windows);
        }
        w.mean()
    }

    /// Mean queue wait for one OS across the grid, seconds.
    pub fn mean_wait_os_s(&self, os: OsKind) -> f64 {
        let mut w = Welford::new();
        for m in &self.members {
            match os {
                OsKind::Linux => w.merge(&m.result.wait_linux),
                OsKind::Windows => w.merge(&m.result.wait_windows),
            }
        }
        w.mean()
    }

    /// Core-weighted mean utilisation across members.
    pub fn utilisation(&self) -> f64 {
        let total = f64::from(self.total_cores());
        if total == 0.0 {
            return 0.0;
        }
        self.members
            .iter()
            .map(|m| m.result.utilisation() * f64::from(m.result.total_cores))
            .sum::<f64>()
            / total
    }

    /// Serialise to canonical (non-pretty) JSON — the byte-comparable
    /// form used by the determinism tests and `--json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("grid result serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimDuration;

    fn member(name: &str, cores: u32, completed: (u32, u32)) -> MemberResult {
        let mut r = SimResult::new(cores);
        for _ in 0..completed.0 {
            r.record_completion(
                OsKind::Linux,
                SimDuration::from_secs(10),
                SimDuration::from_secs(100),
            );
        }
        for _ in 0..completed.1 {
            r.record_completion(
                OsKind::Windows,
                SimDuration::from_secs(30),
                SimDuration::from_secs(100),
            );
        }
        MemberResult {
            name: name.to_string(),
            routed: u64::from(completed.0 + completed.1),
            result: r,
        }
    }

    #[test]
    fn aggregates_span_members() {
        let g = GridResult {
            routing: RoutePolicy::QueueDepth,
            members: vec![member("a", 64, (2, 0)), member("b", 32, (0, 2))],
            broker: BrokerStats::default(),
            end_time: SimTime::from_secs(100),
        };
        assert_eq!(g.total_completed(), 4);
        assert_eq!(g.total_cores(), 96);
        assert_eq!(g.mean_wait_s(), 20.0);
        assert_eq!(g.mean_wait_os_s(OsKind::Linux), 10.0);
        assert_eq!(g.mean_wait_os_s(OsKind::Windows), 30.0);
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let g = GridResult {
            routing: RoutePolicy::Static,
            members: vec![member("a", 64, (1, 1))],
            broker: BrokerStats::default(),
            end_time: SimTime::from_secs(5),
        };
        // Offline builds substitute a typecheck-only serde_json whose
        // serialiser cannot run; skip the byte-level check there.
        let Ok(json) = std::panic::catch_unwind(|| g.to_json()) else {
            return;
        };
        let back: GridResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json(), json);
        assert_eq!(back.total_completed(), 2);
    }
}
