//! Parallel multi-seed grid replication.
//!
//! Mirrors `dualboot_cluster::replicate`: fan independent federation runs
//! over the shared work-stealing pool ([`dualboot_core::pool`]), collect
//! **in seed order** regardless of which worker finished first, so the
//! output is bit-identical across worker counts and machines. Unlike the
//! cluster version this returns the full per-seed [`GridResult`] list —
//! grid experiments compare policies per seed, not just cross-seed
//! summaries.

use crate::result::GridResult;
use crate::sim::GridSim;
use crate::spec::GridSpec;

/// Run one federation per seed across `workers` threads.
///
/// `build` maps a seed to its [`GridSpec`]; it runs on worker threads and
/// must be `Sync`. Workers are clamped to the seed count; `workers == 1`
/// degenerates to a sequential loop (no threads spawned). The returned
/// vector is in seed order.
pub fn replicate_grid<F>(seeds: &[u64], workers: usize, build: F) -> Vec<GridResult>
where
    F: Fn(u64) -> GridSpec + Sync,
{
    dualboot_core::pool::run_indexed(seeds.len(), workers, |i| GridSim::new(build(seeds[i])).run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualboot_des::time::SimDuration;

    fn build(seed: u64) -> GridSpec {
        let mut spec = GridSpec::campus(seed, 3);
        spec.workload.duration = SimDuration::from_hours(1);
        spec
    }

    #[test]
    fn returns_one_result_per_seed_in_order() {
        let results = replicate_grid(&[1, 2, 3], 2, build);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.broker.decisions > 0);
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let seeds: Vec<u64> = (1..=4).collect();
        let a = replicate_grid(&seeds, 1, build);
        let b = replicate_grid(&seeds, 4, build);
        // Debug formatting covers every field: bit-level identity that
        // also works offline (serde_json substitute cannot serialise).
        let aj: Vec<String> = a.iter().map(|r| format!("{r:?}")).collect();
        let bj: Vec<String> = b.iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(aj, bj);
    }

    #[test]
    fn empty_seed_list() {
        assert!(replicate_grid(&[], 4, build).is_empty());
    }
}
