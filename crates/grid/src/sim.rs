//! The shared-clock federation loop.
//!
//! [`GridSim`] owns N member [`Simulation`]s plus its own event queue
//! (job arrivals and gossip ticks) and interleaves them on one logical
//! clock: each round, whichever queue holds the earliest next event
//! advances by exactly one event. Ties resolve grid-first, then by the
//! federation's sorted member order — a fixed total order, so a grid run
//! is a pure function of its [`GridSpec`].
//!
//! Gossip: on every report tick each member's state summary is sent as a
//! [`Message::GridReport`] line over its own member→broker wire — an
//! in-process transport wrapped in the deterministic link-fault decorator.
//! A quiet wire is an exact passthrough; a lossy one starves and lags the
//! broker's view, which is precisely how a flaky campus network degrades
//! a real metascheduler.

use crate::broker::{Broker, MemberCaps};
use crate::result::{GridResult, MemberResult};
use crate::spec::GridSpec;
use dualboot_cluster::Simulation;
use dualboot_des::queue::EventQueue;
use dualboot_des::rng::DetRng;
use dualboot_des::time::SimTime;
use dualboot_net::faulty::{FaultyTransport, LinkStats};
use dualboot_net::proto::{ClusterReport, Message};
use dualboot_net::transport::{in_proc_pair, InProcTransport, Transport};
use dualboot_obs::ObsSink;
use dualboot_workload::generator::SubmitEvent;

/// Grid-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridEvent {
    /// Route trace entry `i` through the broker.
    Submit(usize),
    /// Every member reports its state to the broker.
    ReportTick,
}

/// The member→broker gossip wire: in-process, with deterministic link
/// faults.
type GossipWire = FaultyTransport<InProcTransport, DetRng>;

struct Member {
    name: String,
    sim: Simulation,
    /// Member end of the gossip wire (sender).
    tx: GossipWire,
    /// Broker end of the gossip wire (receiver).
    rx: InProcTransport,
}

/// One federation run.
///
/// ```
/// use dualboot_grid::{GridSim, GridSpec};
///
/// let mut spec = GridSpec::campus(7, 3);
/// spec.workload.duration = dualboot_des::time::SimDuration::from_hours(2);
/// let result = GridSim::new(spec).run();
/// assert_eq!(result.total_unfinished(), 0);
/// ```
pub struct GridSim {
    spec: GridSpec,
    trace: Vec<SubmitEvent>,
    queue: EventQueue<GridEvent>,
    members: Vec<Member>,
    broker: Broker,
    submitted: usize,
    obs: ObsSink,
}

impl GridSim {
    /// Build a federation from `spec`.
    ///
    /// Members are sorted by name (the spec's list order is irrelevant)
    /// and every derived seed is keyed on the member's *name*, so two
    /// specs differing only in member permutation produce byte-identical
    /// results.
    pub fn new(mut spec: GridSpec) -> GridSim {
        spec.members.sort_by(|a, b| a.name.cmp(&b.name));
        debug_assert!(
            spec.members.windows(2).all(|w| w[0].name != w[1].name),
            "member names must be unique"
        );
        let trace = spec.workload.generate();
        let last_submit = trace.last().map(|e| e.at).unwrap_or(SimTime::ZERO);

        let mut queue = EventQueue::new();
        for (i, ev) in trace.iter().enumerate() {
            queue.schedule_at(ev.at, GridEvent::Submit(i));
        }
        queue.schedule(spec.report_every, GridEvent::ReportTick);

        let caps: Vec<MemberCaps> = spec
            .members
            .iter()
            .map(|m| MemberCaps::from_config(&m.cfg))
            .collect();
        // One shared sink for the whole federation: member simulations,
        // gossip wires, and the broker all emit into it, interleaved on
        // the shared clock.
        let obs = ObsSink::new(spec.obs);
        let mut members = Vec::with_capacity(spec.members.len());
        for m in &spec.members {
            let mut cfg = m.cfg.clone();
            // The federation's horizon governs; a member must not stop
            // early while the grid still feeds it.
            cfg.horizon = cfg.horizon.max(spec.horizon);
            let mut sim = Simulation::new(cfg, Vec::new());
            sim.set_keep_alive(last_submit);
            sim.attach_obs(obs.clone());
            let (member_end, broker_end) = in_proc_pair();
            let dice = DetRng::seed_from(spec.seed ^ 0x6055_1bed).derive(&m.name);
            let mut tx = FaultyTransport::new(member_end, spec.gossip, dice);
            tx.set_obs(obs.clone());
            members.push(Member {
                name: m.name.clone(),
                sim,
                tx,
                rx: broker_end,
            });
        }
        let mut broker = Broker::new(spec.routing, caps);
        broker.set_obs(obs.clone());
        GridSim {
            spec,
            trace,
            queue,
            members,
            broker,
            submitted: 0,
            obs,
        }
    }

    /// The federation's shared observability sink. Clone it before
    /// [`run`](Self::run) (which consumes the sim) to read the trace
    /// afterwards — the clone shares the same bus.
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// Run the federation to completion (or the horizon).
    pub fn run(mut self) -> GridResult {
        let horizon = SimTime::ZERO + self.spec.horizon;
        loop {
            let grid_next = self.queue.next_time();
            let mut member_next: Option<(SimTime, usize)> = None;
            for (i, m) in self.members.iter_mut().enumerate() {
                if let Some(t) = m.sim.next_event_time() {
                    if member_next.is_none_or(|(bt, _)| t < bt) {
                        member_next = Some((t, i));
                    }
                }
            }
            // Grid events win ties: the broker routes (and gossips) at an
            // instant before members process their own events at it.
            let pick_grid = match (grid_next, member_next) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(g), Some((mt, _))) => g <= mt,
            };
            if pick_grid {
                let t = grid_next.expect("grid event picked");
                if t > horizon {
                    break;
                }
                let (_, ev) = self.queue.pop().expect("peeked grid event");
                match ev {
                    GridEvent::Submit(i) => self.on_submit(i),
                    GridEvent::ReportTick => self.on_report_tick(),
                }
            } else {
                let (t, i) = member_next.expect("member event picked");
                if t > horizon {
                    break;
                }
                self.members[i].sim.step();
            }
        }
        self.finish(horizon)
    }

    /// Ground-truth state summary of member `i`, stamped `at`.
    fn member_report(&self, i: usize, at: SimTime) -> ClusterReport {
        let m = &self.members[i];
        let (lin, win) = m.sim.queue_snapshots();
        ClusterReport {
            at,
            linux_queued: lin.queued,
            windows_queued: win.queued,
            linux_free_cores: lin.cores_free,
            windows_free_cores: win.cores_free,
            linux_nodes: lin.nodes_online,
            windows_nodes: win.nodes_online,
            booting: m.sim.booting_nodes(),
            quarantined: m.sim.quarantined_nodes(),
            torn_down: m.sim.torn_down_nodes(),
            energy_wh: m.sim.energy_wh(),
        }
    }

    fn on_submit(&mut self, i: usize) {
        let now = self.queue.now();
        self.obs.set_now(now);
        let req = self.trace[i].req.clone();
        let fresh: Vec<ClusterReport> = (0..self.members.len())
            .map(|j| self.member_report(j, now))
            .collect();
        let chosen = self.broker.route(&req, now, &fresh);
        self.members[chosen].sim.inject(now, req);
        self.submitted += 1;
    }

    fn on_report_tick(&mut self) {
        let now = self.queue.now();
        self.obs.set_now(now);
        // Every member emits its line; the wire may drop, delay, or
        // duplicate it. Sending also ages previously held lines.
        for i in 0..self.members.len() {
            let report = self.member_report(i, now);
            let msg = Message::GridReport {
                member: self.members[i].name.clone(),
                report,
            };
            self.broker.note_report_sent();
            self.members[i].tx.send(&msg).expect("in-proc gossip wire");
        }
        // The broker drains whatever made it through, in member order.
        for i in 0..self.members.len() {
            while let Some(msg) = self.members[i].rx.try_recv().expect("in-proc gossip wire") {
                if let Message::GridReport { report, .. } = msg {
                    self.broker.observe(i, now, report);
                }
            }
        }
        if !self.done() {
            self.queue
                .schedule(self.spec.report_every, GridEvent::ReportTick);
        }
    }

    /// Gossip keeps ticking while arrivals remain or any member still has
    /// jobs in flight.
    fn done(&self) -> bool {
        self.submitted == self.trace.len()
            && self.members.iter().all(|m| m.sim.jobs_outstanding() == 0)
    }

    fn finish(self, horizon: SimTime) -> GridResult {
        let end_time = self.queue.now().min(horizon);
        let routed = self.broker.routed().to_vec();
        let mut link = LinkStats::default();
        let mut members = Vec::with_capacity(self.members.len());
        for (i, m) in self.members.into_iter().enumerate() {
            let s = m.tx.stats();
            link.dropped += s.dropped;
            link.delayed += s.delayed;
            link.duplicated += s.duplicated;
            members.push(MemberResult {
                name: m.name,
                routed: routed[i],
                result: m.sim.into_result(),
            });
        }
        let mut broker = self.broker.into_stats();
        broker.link = link;
        GridResult {
            routing: self.spec.routing,
            members,
            broker,
            end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoutePolicy;
    use dualboot_des::time::SimDuration;

    fn quick_spec(seed: u64, routing: RoutePolicy) -> GridSpec {
        let mut spec = GridSpec::campus(seed, 3);
        spec.routing = routing;
        spec.workload.duration = SimDuration::from_hours(2);
        spec
    }

    #[test]
    fn federation_completes_a_mixed_workload() {
        for routing in RoutePolicy::ALL {
            let r = GridSim::new(quick_spec(7, routing)).run();
            assert_eq!(
                r.total_unfinished(),
                0,
                "{} left jobs stranded",
                routing.name()
            );
            assert!(r.total_completed() > 0);
            assert_eq!(
                u64::from(r.total_completed()),
                r.broker.decisions,
                "every decision corresponds to a completed job"
            );
        }
    }

    // Debug formatting covers every field, so string equality is a
    // bit-level identity check that also works in offline builds (where
    // the serde_json substitute cannot serialise).
    fn fingerprint(r: &crate::result::GridResult) -> String {
        format!("{r:?}")
    }

    #[test]
    fn grid_runs_are_deterministic() {
        let run = || GridSim::new(quick_spec(11, RoutePolicy::SwitchCoop)).run();
        assert_eq!(fingerprint(&run()), fingerprint(&run()));
    }

    #[test]
    fn member_permutation_is_irrelevant() {
        let spec = quick_spec(13, RoutePolicy::QueueDepth);
        let mut reversed = spec.clone();
        reversed.members.reverse();
        let a = GridSim::new(spec).run();
        let b = GridSim::new(reversed).run();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn coop_switches_less_than_static_on_a_mixed_stream() {
        let s = GridSim::new(quick_spec(7, RoutePolicy::Static)).run();
        let c = GridSim::new(quick_spec(7, RoutePolicy::SwitchCoop)).run();
        assert!(
            c.total_switches() <= s.total_switches(),
            "coop ({}) must not out-switch static ({})",
            c.total_switches(),
            s.total_switches()
        );
    }

    #[test]
    fn gossip_flows_on_a_quiet_wire() {
        let r = GridSim::new(quick_spec(5, RoutePolicy::QueueDepth)).run();
        assert!(r.broker.reports_sent > 0);
        assert_eq!(
            r.broker.reports_sent, r.broker.reports_received,
            "quiet wire loses nothing"
        );
        assert_eq!(r.broker.link, LinkStats::default());
        assert!(r.broker.view_staleness_s.count() > 0);
    }

    #[test]
    fn lossy_gossip_starves_the_view() {
        let mut spec = quick_spec(5, RoutePolicy::QueueDepth);
        spec.gossip.drop_p = 0.5;
        let r = GridSim::new(spec).run();
        assert!(r.broker.link.dropped > 0);
        assert!(
            r.broker.reports_received < r.broker.reports_sent,
            "drops must starve the broker"
        );
        // Still deterministic under faults.
        let mut spec2 = quick_spec(5, RoutePolicy::QueueDepth);
        spec2.gossip.drop_p = 0.5;
        assert_eq!(fingerprint(&GridSim::new(spec2).run()), fingerprint(&r));
    }

    #[test]
    fn chaos_grid_completes_and_reproduces() {
        let mk = || {
            let mut spec = quick_spec(9, RoutePolicy::SwitchCoop);
            spec.apply_chaos();
            spec
        };
        let a = GridSim::new(mk()).run();
        let b = GridSim::new(mk()).run();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // The chaos campaign actually fired inside members.
        assert!(a.members.iter().any(|m| !m.result.faults.is_zero()));
    }

    #[test]
    fn empty_workload_grid_terminates_immediately() {
        let mut spec = quick_spec(1, RoutePolicy::Static);
        spec.workload.duration = SimDuration::from_millis(1);
        let r = GridSim::new(spec).run();
        assert_eq!(r.total_completed() + r.total_unfinished(), 0);
    }
}
