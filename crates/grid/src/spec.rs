//! Grid scenario configuration.

use dualboot_cluster::{FaultPlan, SimConfig};
use dualboot_des::time::SimDuration;
use dualboot_net::faulty::LinkFaults;
use dualboot_obs::ObsConfig;
use dualboot_workload::generator::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// FNV-1a over a string: the grid's stable name hash, used to derive
/// per-member seeds and to pin jobs under [`RoutePolicy::Static`]. Keyed
/// on *names*, never on list positions, so permuting the member list
/// cannot change anything.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How the broker picks a member cluster for each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Jobs pinned per cluster by a hash of the job name — the paper's
    /// baseline of carving the campus into fixed sub-grids. State-blind:
    /// gossip reports are ignored.
    Static,
    /// Route to the member whose *viewed* queue for the job's OS is
    /// shortest (ties: total queue, then free cores, then spread).
    QueueDepth,
    /// Cooperate with per-cluster OS switching: prefer a member already
    /// booted into the job's OS with free cores — routing *around* a
    /// reboot instead of forcing one — falling back to queue-depth
    /// routing when nobody is ready.
    SwitchCoop,
}

impl RoutePolicy {
    /// Every policy, in report order.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::Static,
        RoutePolicy::QueueDepth,
        RoutePolicy::SwitchCoop,
    ];

    /// Stable name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Static => "static",
            RoutePolicy::QueueDepth => "queue",
            RoutePolicy::SwitchCoop => "coop",
        }
    }

    /// Parse a CLI token (`static` | `queue` | `coop`).
    pub fn parse(s: &str) -> Option<RoutePolicy> {
        match s {
            "static" => Some(RoutePolicy::Static),
            "queue" => Some(RoutePolicy::QueueDepth),
            "coop" => Some(RoutePolicy::SwitchCoop),
            _ => None,
        }
    }
}

/// One member cluster of the federation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberSpec {
    /// Unique whitespace-free name (it travels in gossip lines).
    pub name: String,
    /// The member's full scenario config — nodes, cycles, switch policy,
    /// per-member fault plan. Its `horizon` is raised to the grid's.
    pub cfg: SimConfig,
}

/// A complete grid scenario: members, broker policy, gossip wire, and the
/// unified workload the broker distributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid-level seed (member seeds derive from it by name).
    pub seed: u64,
    /// The federated clusters. Order is irrelevant: [`crate::GridSim`]
    /// sorts by name and all derived randomness is keyed on names.
    pub members: Vec<MemberSpec>,
    /// Broker routing policy.
    pub routing: RoutePolicy,
    /// Gossip cadence: every member reports its state to the broker on
    /// this cycle (the federation analogue of the paper's fixed daemon
    /// cycles).
    pub report_every: SimDuration,
    /// Link faults on every member→broker gossip wire. Quiet by default;
    /// a lossy wire makes the broker's view stale and its routing worse.
    #[serde(default)]
    pub gossip: LinkFaults,
    /// Observability bus configuration. One shared sink covers the whole
    /// federation: every member simulation, every gossip wire, and the
    /// broker emit into it. Disabled (zero-cost) by default.
    #[serde(default)]
    pub obs: ObsConfig,
    /// The unified workload stream offered to the broker.
    pub workload: WorkloadSpec,
    /// Hard stop for the whole federation.
    pub horizon: SimDuration,
}

impl GridSpec {
    /// A Queensgate-flavoured campus default: `clusters` heterogeneous
    /// members (a Linux-leaning 16-node cluster, a Windows-leaning
    /// 16-node cluster, a small half/half 8-node cluster, repeating) fed
    /// by a mixed 40 %-Windows stream at ≈55 % offered load.
    pub fn campus(seed: u64, clusters: usize) -> GridSpec {
        const STARS: [&str; 8] = [
            "eridani", "tauceti", "procyon", "altair", "vega", "deneb", "sirius", "rigel",
        ];
        let mut members = Vec::with_capacity(clusters);
        for i in 0..clusters {
            let name = STARS
                .get(i)
                .map(|s| (*s).to_string())
                .unwrap_or_else(|| format!("grid{i:02}"));
            let mut cfg = SimConfig::builder().v2().seed(seed ^ fnv1a(&name)).build();
            match i % 3 {
                0 => cfg.initial_linux_nodes = cfg.nodes, // Linux-leaning
                1 => cfg.initial_linux_nodes = 0,         // Windows-leaning
                _ => {
                    cfg.nodes = 8; // small half/half cluster
                    cfg.initial_linux_nodes = 4;
                }
            }
            members.push(MemberSpec { name, cfg });
        }
        let total_cores: u32 = members.iter().map(|m| m.cfg.total_cores()).sum();
        let workload = WorkloadSpec {
            windows_fraction: 0.4,
            ..WorkloadSpec::campus_default(seed)
        }
        .with_offered_load(0.55, total_cores.max(1));
        GridSpec {
            seed,
            members,
            routing: RoutePolicy::SwitchCoop,
            report_every: SimDuration::from_mins(2),
            gossip: LinkFaults::default(),
            obs: ObsConfig::default(),
            workload,
            horizon: SimDuration::from_hours(72),
        }
    }

    /// Turn on the default chaos campaign grid-wide: every member gets
    /// its own (name-derived) [`FaultPlan::default_chaos`] schedule and
    /// the gossip wires take the same lossy link probabilities.
    pub fn apply_chaos(&mut self) {
        for m in &mut self.members {
            m.cfg.faults = FaultPlan::default_chaos(self.seed ^ fnv1a(&m.name));
        }
        self.gossip = FaultPlan::default_chaos(self.seed).link;
    }

    /// Apply one user-supplied fault plan grid-wide: every member runs
    /// the plan's scheduled events, with its probabilistic dice reseeded
    /// by the member's name, and the gossip wires take the plan's link
    /// probabilities.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for m in &mut self.members {
            let mut p = plan.clone();
            p.seed = plan.seed ^ fnv1a(&m.name);
            m.cfg.faults = p;
        }
        self.gossip = plan.link;
    }

    /// Total cores across the federation.
    pub fn total_cores(&self) -> u32 {
        self.members.iter().map(|m| m.cfg.total_cores()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_members_are_heterogeneous() {
        let spec = GridSpec::campus(7, 3);
        assert_eq!(spec.members.len(), 3);
        let by_name = |n: &str| {
            spec.members
                .iter()
                .find(|m| m.name == n)
                .expect("member exists")
        };
        assert_eq!(by_name("eridani").cfg.initial_linux_nodes, 16);
        assert_eq!(by_name("tauceti").cfg.initial_linux_nodes, 0);
        assert_eq!(by_name("procyon").cfg.nodes, 8);
        assert_eq!(spec.total_cores(), (16 + 16 + 8) * 4);
    }

    #[test]
    fn member_seeds_depend_on_names_not_positions() {
        let a = GridSpec::campus(7, 3);
        let b = GridSpec::campus(7, 3);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.cfg.seed, mb.cfg.seed);
        }
        // Distinct names draw distinct seeds.
        assert_ne!(a.members[0].cfg.seed, a.members[1].cfg.seed);
    }

    #[test]
    fn many_clusters_get_generated_names() {
        let spec = GridSpec::campus(1, 10);
        assert_eq!(spec.members[8].name, "grid08");
        assert_eq!(spec.members[9].name, "grid09");
    }

    #[test]
    fn chaos_touches_every_member_and_the_gossip_wire() {
        let mut spec = GridSpec::campus(3, 3);
        assert!(spec.gossip.is_quiet());
        spec.apply_chaos();
        assert!(!spec.gossip.is_quiet());
        for m in &spec.members {
            assert!(!m.cfg.faults.is_quiet());
        }
        // Member fault seeds differ (name-derived).
        assert_ne!(
            spec.members[0].cfg.faults.seed,
            spec.members[1].cfg.faults.seed
        );
    }

    #[test]
    fn route_policy_names_round_trip() {
        for p in RoutePolicy::ALL {
            assert_eq!(RoutePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RoutePolicy::parse("nonsense"), None);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = GridSpec::campus(42, 4);
        // Offline builds substitute a typecheck-only serde_json whose
        // serialiser cannot run; skip the round-trip there.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&spec).unwrap()) else {
            return;
        };
        let back: GridSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
