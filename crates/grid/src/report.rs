//! Plain-text grid report sections.
//!
//! Reuses the cluster crate's [`Table`] so grid output and single-cluster
//! output share one format.

use crate::result::GridResult;
use dualboot_bootconf::os::OsKind;
use dualboot_cluster::report::{fmt_secs, result_row, Table, RESULT_HEADERS};

/// Per-member table: the standard result columns plus how many jobs the
/// broker routed to each member.
pub fn member_table(r: &GridResult) -> String {
    let mut headers: Vec<&str> = vec!["member", "routed"];
    headers.extend(&RESULT_HEADERS[1..]);
    let mut t = Table::new(format!("grid members [{}]", r.routing.name()), &headers);
    for m in &r.members {
        let mut cells = vec![m.name.clone(), m.routed.to_string()];
        cells.extend(result_row("", &m.result).into_iter().skip(1));
        t.row(&cells);
    }
    t.render()
}

/// Broker section: decision quality and gossip-wire health.
pub fn broker_section(r: &GridResult) -> String {
    let b = &r.broker;
    let mut t = Table::new("grid broker", &["metric", "value"]);
    let mut row = |k: &str, v: String| t.row(&[k.to_string(), v]);
    row("policy", r.routing.name().to_string());
    row("decisions", b.decisions.to_string());
    row(
        "stale decisions",
        format!(
            "{} ({:.1}%)",
            b.stale_decisions,
            100.0 * b.stale_decisions as f64 / (b.decisions.max(1)) as f64
        ),
    );
    row("reports sent", b.reports_sent.to_string());
    row("reports received", b.reports_received.to_string());
    row("view staleness", fmt_secs(b.view_staleness_s.mean()));
    if b.link != Default::default() {
        row(
            "gossip faults",
            format!(
                "{} dropped, {} delayed, {} duplicated",
                b.link.dropped, b.link.delayed, b.link.duplicated
            ),
        );
    }
    t.render()
}

/// One summary row per policy for a sweep table built with
/// [`SWEEP_HEADERS`].
pub fn sweep_row(r: &GridResult) -> Vec<String> {
    vec![
        r.routing.name().to_string(),
        r.total_completed().to_string(),
        r.total_unfinished().to_string(),
        format!("{:.1}%", 100.0 * r.utilisation()),
        fmt_secs(r.mean_wait_s()),
        fmt_secs(r.mean_wait_os_s(OsKind::Linux)),
        fmt_secs(r.mean_wait_os_s(OsKind::Windows)),
        r.total_switches().to_string(),
        r.broker.stale_decisions.to_string(),
    ]
}

/// Headers matching [`sweep_row`].
pub const SWEEP_HEADERS: [&str; 9] = [
    "policy",
    "done",
    "unfin",
    "util",
    "wait(all)",
    "wait(L)",
    "wait(W)",
    "switches",
    "stale",
];

/// Full report for one grid run: member table + broker section.
pub fn render(r: &GridResult) -> String {
    let mut out = member_table(r);
    out.push('\n');
    out.push_str(&broker_section(r));
    let billed: f64 = r.members.iter().map(|m| m.result.cost.node_h_billed()).sum();
    let kwh: f64 = r.members.iter().map(|m| m.result.cost.energy_kwh()).sum();
    out.push_str(&format!(
        "grid cost: {billed:.1} billed node-hours, {kwh:.2} kWh\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GridSim;
    use crate::spec::{GridSpec, RoutePolicy};
    use dualboot_des::time::SimDuration;

    fn quick_result(routing: RoutePolicy) -> GridResult {
        let mut spec = GridSpec::campus(7, 3);
        spec.routing = routing;
        spec.workload.duration = SimDuration::from_hours(1);
        GridSim::new(spec).run()
    }

    #[test]
    fn member_table_has_one_row_per_member() {
        let r = quick_result(RoutePolicy::QueueDepth);
        let text = member_table(&r);
        assert!(text.contains("eridani"));
        assert!(text.contains("tauceti"));
        assert!(text.contains("procyon"));
        assert!(text.contains("[queue]"));
    }

    #[test]
    fn broker_section_reports_gossip() {
        let r = quick_result(RoutePolicy::SwitchCoop);
        let text = broker_section(&r);
        assert!(text.contains("policy"));
        assert!(text.contains("coop"));
        assert!(text.contains("reports sent"));
        // Quiet wire: no gossip-fault row.
        assert!(!text.contains("gossip faults"));
    }

    #[test]
    fn sweep_row_matches_headers() {
        let r = quick_result(RoutePolicy::Static);
        assert_eq!(sweep_row(&r).len(), SWEEP_HEADERS.len());
    }

    #[test]
    fn full_render_combines_sections() {
        let r = quick_result(RoutePolicy::Static);
        let text = render(&r);
        assert!(text.contains("grid members"));
        assert!(text.contains("grid broker"));
    }
}
