#![warn(missing_docs)]

//! # dualboot-grid — the Queensgate campus-grid federation layer
//!
//! The paper deploys dualboot-oscar on Eridani as one member of the
//! University of Huddersfield's Queensgate **campus grid** (§V): several
//! independently-operated clusters serving one mixed Linux/Windows
//! application portfolio. This crate federates N simulated hybrid
//! clusters — each with its own nodes, schedulers, daemons and OS-switch
//! policy — under a single shared discrete-event clock, and puts a **grid
//! broker** in front of the unified workload stream.
//!
//! * [`spec`] — [`GridSpec`]/[`MemberSpec`] scenario configuration and
//!   the [`RoutePolicy`] spectrum: static partitioning (jobs pinned per
//!   cluster, the paper's baseline), queue-depth-aware routing, and
//!   switch-cooperative routing (prefer a cluster already booted into the
//!   job's OS over forcing a local switch).
//! * [`broker`] — the routing decision machinery working from gossiped
//!   state views, never from member internals.
//! * [`sim`] — [`GridSim`]: the shared-clock interleaving loop plus the
//!   report gossip over `dualboot_net`'s [`Transport`] abstraction. Link
//!   faults on the gossip wire (drops, delays, duplicates) degrade the
//!   broker's view realistically: stale reports → misroutes → measurable
//!   wait inflation.
//! * [`result`] — [`GridResult`]: per-member results plus broker and
//!   gossip-link counters, fully serialisable.
//! * [`replicate`] — multi-seed grid replication with seed-order folding,
//!   bit-identical across worker counts.
//! * [`report`] — plain-text grid report sections.
//!
//! Determinism: a grid run is a pure function of its [`GridSpec`].
//! Members are sorted by name and seeded from `seed ^ fnv(name)`, so the
//! member list's order in the spec is irrelevant; repeats and
//! [`replicate::replicate_grid`] worker counts reproduce results bit for
//! bit.
//!
//! [`Transport`]: dualboot_net::transport::Transport

pub mod broker;
pub mod replicate;
pub mod report;
pub mod result;
pub mod sim;
pub mod spec;

pub use broker::{Broker, MemberCaps};
pub use replicate::replicate_grid;
pub use result::{BrokerStats, GridResult, MemberResult};
pub use sim::GridSim;
pub use spec::{GridSpec, MemberSpec, RoutePolicy};
