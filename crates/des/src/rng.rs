//! Deterministic random streams.
//!
//! Every stochastic model in the reproduction (job arrivals, service times,
//! reboot jitter) draws from a [`DetRng`] derived from a single experiment
//! seed. Sub-streams are split by label so that adding a new consumer does
//! not perturb the draws seen by existing ones — the standard trick for
//! keeping DES experiments comparable across code changes.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random stream with the distributions the models need.
///
/// ```
/// use dualboot_des::rng::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let mut arrivals = a.split("arrivals"); // decorrelated sub-stream
/// assert!(arrivals.exp_mean(300.0) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Create the root stream for an experiment seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream for `label` *without consuming*
    /// from this stream.
    ///
    /// Unlike [`split`](DetRng::split), the derivation is a pure function of
    /// `(seed, label)` — `FNV-1a(label) XOR seed` — so callers holding only
    /// `&self` (or wanting late-bound streams that don't shift earlier
    /// consumers) get the same stream no matter when they derive it.
    pub fn derive(&self, label: &str) -> DetRng {
        DetRng::seed_from(fnv1a(label) ^ self.seed)
    }

    /// Derive an independent sub-stream for `label`.
    ///
    /// The derivation is `FNV-1a(label) XOR fresh-draw`, so distinct labels
    /// get decorrelated streams and the same `(seed, label)` pair always
    /// yields the same stream.
    pub fn split(&mut self, label: &str) -> DetRng {
        DetRng::seed_from(fnv1a(label) ^ self.inner.gen::<u64>())
    }

    /// Uniform sample from a range (inclusive or exclusive, like `gen_range`).
    pub fn uniform<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Exponential variate with the given mean (seconds, or any unit).
    ///
    /// Used for Poisson inter-arrival times in the workload generator.
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Truncated normal variate via the Box–Muller transform, clamped to
    /// `[min, max]`. Used for reboot-latency jitter around the paper's
    /// "about 5 minutes".
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, min: f64, max: f64) -> f64 {
        assert!(min <= max, "normal_clamped: min > max");
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).clamp(min, max)
    }

    /// Log-normal variate parameterised by the *target* mean and sigma of
    /// the underlying normal. Job service times in parallel workloads are
    /// classically heavy-tailed; log-normal is the usual synthetic stand-in.
    pub fn lognormal_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        // Choose mu so that E[X] = exp(mu + sigma^2/2) = mean.
        let mu = mean.ln() - sigma * sigma / 2.0;
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.inner.gen_range(0..items.len())]
    }

    /// Weighted pick: `weights[i]` is the relative weight of index `i`.
    /// Returns the chosen index. Zero-total weights fall back to uniform.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "choose_weighted from empty slice");
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return self.inner.gen_range(0..weights.len());
        }
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if x < *w {
                    return i;
                }
                x -= *w;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Raw `u64` draw (for deriving ids, etc.).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// FNV-1a over a label, shared by [`DetRng::split`] and [`DetRng::derive`].
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_reproducible() {
        let mut root1 = DetRng::seed_from(7);
        let mut root2 = DetRng::seed_from(7);
        let mut s1 = root1.split("arrivals");
        let mut s2 = root2.split("arrivals");
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn derive_is_pure_and_non_consuming() {
        let mut root = DetRng::seed_from(7);
        let a1: Vec<u64> = {
            let mut s = root.derive("faults");
            (0..8).map(|_| s.next_u64()).collect()
        };
        // Consuming from the root must not shift derived streams.
        let _ = root.next_u64();
        let a2: Vec<u64> = {
            let mut s = root.derive("faults");
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        // Distinct labels still decorrelate.
        let mut b = root.derive("boot");
        let mut a = root.derive("faults");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn seed_is_retained() {
        assert_eq!(DetRng::seed_from(99).seed(), 99);
    }

    #[test]
    fn split_streams_with_distinct_labels_differ() {
        let mut root = DetRng::seed_from(7);
        let mut a = root.split("arrivals");
        let mut b = root.split("service");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn exp_mean_is_roughly_mean() {
        let mut r = DetRng::seed_from(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp_mean(300.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 300.0).abs() < 10.0, "mean was {mean}");
    }

    #[test]
    fn exp_mean_is_positive() {
        let mut r = DetRng::seed_from(11);
        for _ in 0..1000 {
            assert!(r.exp_mean(1.0) > 0.0);
        }
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..1000 {
            let x = r.normal_clamped(300.0, 30.0, 240.0, 360.0);
            assert!((240.0..=360.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_mean_converges() {
        let mut r = DetRng::seed_from(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.lognormal_mean(100.0, 0.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn choose_weighted_prefers_heavy_index() {
        let mut r = DetRng::seed_from(13);
        let w = [0.0, 0.0, 10.0, 0.1];
        let hits = (0..1000).filter(|_| r.choose_weighted(&w) == 2).count();
        assert!(hits > 900, "index 2 chosen {hits} times");
    }

    #[test]
    fn choose_weighted_zero_total_is_uniform() {
        let mut r = DetRng::seed_from(17);
        let w = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.choose_weighted(&w)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
