//! Online statistics for experiment metrics.
//!
//! Three accumulators cover everything EXPERIMENTS.md reports:
//!
//! * [`Welford`] — streaming mean/variance for wait times and latencies.
//! * [`Percentiles`] — exact percentiles from retained samples (sample
//!   counts in these experiments are small enough that retention is cheap).
//! * [`TimeWeighted`] — time-weighted average of a step function, which is
//!   how utilisation ("fraction of cores busy") must be integrated over a
//!   simulation run.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Streaming mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over retained samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
}

impl Percentiles {
    /// Empty accumulator.
    pub fn new() -> Self {
        Percentiles { samples: Vec::new() }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `p`-th percentile (0–100) by nearest-rank, `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Convenience: the median.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// The raw retained samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of the retained samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::observe`] whenever the signal changes; the value is
/// held until the next observation. [`TimeWeighted::average`] integrates up
/// to the supplied end time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Begin observing at `start` with initial value `v0`.
    pub fn new(start: SimTime, v0: f64) -> Self {
        TimeWeighted {
            start,
            last_t: start,
            last_v: v0,
            integral: 0.0,
            peak: v0,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    ///
    /// Observations must be non-decreasing in time; an out-of-order
    /// observation is ignored (debug-asserted).
    pub fn observe(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "TimeWeighted observation out of order");
        if t < self.last_t {
            return;
        }
        let dt = (t - self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Largest value ever observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[start, end]`.
    /// Returns 0 for a zero-length window.
    pub fn average(&self, end: SimTime) -> f64 {
        let total = end.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let tail = end.saturating_since(self.last_t).as_secs_f64();
        (self.integral + self.last_v * tail) / total
    }
}

/// Fixed-range, fixed-bin histogram with under/overflow counters.
///
/// Used for distribution claims (E1's switch-latency distribution): the
/// range is known a priori (the boot model's clamp), so fixed bins are
/// exact and allocation-free after construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// A histogram over the **closed** range `[lo, hi]` with `bins`
    /// equal-width bins (`x == hi` lands in the top bin — the natural
    /// convention when `hi` is a clamp bound that values can sit on).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "empty histogram range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x > self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below/above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total observations, including outliers.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Render one `edge..edge: ###` line per bin, bars scaled to `width`.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, n) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar_len = (*n as usize * width).div_ceil(max as usize).min(width);
            let bar: String = std::iter::repeat_n('#', if *n == 0 { 0 } else { bar_len }).collect();
            out.push_str(&format!("{lo:7.1}..{hi:7.1} | {n:5} {bar}
"));
        }
        if self.below + self.above > 0 {
            out.push_str(&format!(
                "outliers: {} below, {} above
",
                self.below, self.above
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance 4.0 -> sample variance 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|x| whole.push(*x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..37].iter().for_each(|x| a.push(*x));
        xs[37..].iter().for_each(|x| b.push(*x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.percentile(50.0), Some(50.0));
        assert_eq!(p.percentile(95.0), Some(95.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.percentile(0.0), Some(1.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(Percentiles::new().median(), None);
    }

    #[test]
    fn time_weighted_average_of_step() {
        // 0 for 10 s, then 1 for 30 s => average over 40 s is 0.75.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.observe(SimTime::from_secs(10), 1.0);
        let avg = tw.average(SimTime::from_secs(40));
        assert!((avg - 0.75).abs() < 1e-12);
        assert_eq!(tw.peak(), 1.0);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_zero_window() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99, -1.0, 10.0, 42.0] {
            h.push(x);
        }
        // 10.0 sits on the closed upper edge: top bin, not an outlier.
        assert_eq!(h.counts(), &[2, 1, 1, 0, 2]);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.total(), 8);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_renders() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.push(1.0);
        h.push(1.5);
        h.push(3.0);
        let text = h.render(10);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("|     2"), "{text}");
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn time_weighted_multiple_steps() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.observe(SimTime::from_secs(10), 0.0);
        tw.observe(SimTime::from_secs(20), 2.0);
        // [0,10)=4, [10,20)=0, [20,30)=2 => (40+0+20)/30 = 2.0
        assert!((tw.average(SimTime::from_secs(30)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
    }
}
