//! Cancellable, FIFO-stable event queue.
//!
//! Ordering guarantee: events fire in ascending `(time, sequence)` order,
//! where `sequence` is the global insertion counter. Two events scheduled
//! for the same instant therefore fire in the order they were scheduled —
//! this matters for the reproduction because the paper's control protocol
//! (Figure 11) relies on "send queue state, then decide, then reboot"
//! happening in program order within one poll tick.
//!
//! Cancellation is tombstone-based: [`EventQueue::cancel`] marks the id dead
//! and [`EventQueue::pop`] skips dead entries lazily. This keeps `cancel` at
//! O(log n) amortised without a secondary index into the heap.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Manual ord impls keyed on (at, seq) only, so `E` needs no Ord bound.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation's event queue and clock.
///
/// `now()` advances monotonically as events are popped; scheduling in the
/// past is a logic error and panics in debug builds (clamped to `now` in
/// release builds, which keeps long benches running if a model computes a
/// zero-length delay from float jitter).
///
/// ```
/// use dualboot_des::queue::EventQueue;
/// use dualboot_des::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimDuration::from_secs(5), "reboot done");
/// let stale = q.schedule(SimDuration::from_secs(2), "poll");
/// q.cancel(stale);
/// let (t, event) = q.pop().unwrap();
/// assert_eq!(t.as_secs(), 5);
/// assert_eq!(event, "reboot done");
/// assert_eq!(q.now(), t);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    fired: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` at the absolute instant `at`.
    ///
    /// Scheduling in the past panics in debug builds and clamps to `now`
    /// in release builds.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduled event in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false; // never issued
        }
        // An id counts as pending if some heap entry still carries it.
        let live = self.heap.iter().any(|Reverse(e)| e.seq == id.0);
        if live {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&EventId(entry.seq)) {
                continue;
            }
            self.now = entry.at;
            self.fired += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it, pruning dead
    /// tombstones off the top of the heap as it looks.
    ///
    /// Functionally identical to [`EventQueue::peek_time`] but O(log n)
    /// amortised instead of O(n), at the cost of `&mut self`. Interleaved
    /// drivers (the grid federation loop) call this once per event per
    /// member, so the linear scan would dominate.
    pub fn next_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(e)) = self.heap.peek() {
            let id = EventId(e.seq);
            if self.cancelled.contains(&id) {
                self.heap.pop();
                self.cancelled.remove(&id);
                continue;
            }
            return Some(e.at);
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&EventId(e.seq)))
            .map(|Reverse(e)| e.at)
            .min()
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule(SimDuration::from_secs(5), "b");
        q.schedule(SimDuration::from_secs(1), "a");
        q.schedule(SimDuration::from_secs(9), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = q();
        for name in ["first", "second", "third"] {
            q.schedule(SimDuration::from_secs(1), name);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = q();
        q.schedule(SimDuration::from_secs(3), "x");
        q.schedule(SimDuration::from_secs(7), "y");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn relative_schedule_is_from_now() {
        let mut q = q();
        q.schedule(SimDuration::from_secs(10), "a");
        q.pop();
        q.schedule(SimDuration::from_secs(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = q();
        let keep = q.schedule(SimDuration::from_secs(1), "keep");
        let drop = q.schedule(SimDuration::from_secs(2), "drop");
        assert!(q.cancel(drop));
        let _ = keep;
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["keep"]);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut q = q();
        let id = q.schedule(SimDuration::from_secs(1), "x");
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn cancelled_after_fire_returns_false() {
        let mut q = q();
        let id = q.schedule(SimDuration::from_secs(1), "x");
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut q = q();
        q.schedule(SimDuration::from_secs(1), "a");
        let id = q.schedule(SimDuration::from_secs(2), "b");
        q.cancel(id);
        assert_eq!(q.pending(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = q();
        let id = q.schedule(SimDuration::from_secs(1), "a");
        q.schedule(SimDuration::from_secs(5), "b");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn next_time_matches_peek_and_prunes_tombstones() {
        let mut q = q();
        let id = q.schedule(SimDuration::from_secs(1), "a");
        q.schedule(SimDuration::from_secs(5), "b");
        q.cancel(id);
        assert_eq!(q.next_time(), q.peek_time());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
        // Pruning must not change what pops.
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn fired_counts_only_live_events() {
        let mut q = q();
        let id = q.schedule(SimDuration::from_secs(1), "a");
        q.schedule(SimDuration::from_secs(2), "b");
        q.cancel(id);
        while q.pop().is_some() {}
        assert_eq!(q.fired(), 1);
    }

    #[test]
    fn clear_empties_queue_but_keeps_clock() {
        let mut q = q();
        q.schedule(SimDuration::from_secs(1), "a");
        q.pop();
        q.schedule(SimDuration::from_secs(1), "b");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }
}
