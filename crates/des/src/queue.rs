//! Cancellable, FIFO-stable event queue.
//!
//! Ordering guarantee: events fire in ascending `(time, sequence)` order,
//! where `sequence` is the global insertion counter. Two events scheduled
//! for the same instant therefore fire in the order they were scheduled —
//! this matters for the reproduction because the paper's control protocol
//! (Figure 11) relies on "send queue state, then decide, then reboot"
//! happening in program order within one poll tick.
//!
//! Cancellation is tombstone-based: [`EventQueue::cancel`] marks the id dead
//! and [`EventQueue::pop`] skips dead entries lazily.
//!
//! Two interchangeable backends implement the store ([`QueueBackend`]):
//!
//! * [`QueueBackend::Heap`] — the original `BinaryHeap`, kept as the
//!   reference implementation;
//! * [`QueueBackend::Calendar`] — a calendar queue (R. Brown, CACM 1988):
//!   an array of time-bucketed sorted lists that rehashes itself as the
//!   event population grows and shrinks, giving O(1) expected
//!   enqueue/dequeue on the steady-state event mixes the simulator
//!   produces. Because equal timestamps always hash to the same bucket
//!   and buckets are kept sorted by `(time, sequence)`, the pop order is
//!   **bit-identical** to the heap's — `tests/differential_core.rs`
//!   enforces this end-to-end.
//!
//! Both backends expose identical semantics through [`EventQueue`]; the
//! backend choice is a pure performance knob.

use crate::hash::DetHashSet;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum QueueBackend {
    /// The reference `BinaryHeap` implementation.
    #[default]
    Heap,
    /// The calendar-queue implementation (same observable behaviour,
    /// O(1) expected operations at large event populations).
    Calendar,
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueBackend::Heap),
            "calendar" => Ok(QueueBackend::Calendar),
            other => Err(format!("unknown queue backend {other:?} (heap|calendar)")),
        }
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Manual ord impls keyed on (at, seq) only, so `E` needs no Ord bound.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The calendar proper: `nbuckets` "days", each a list sorted
/// *descending* by `(at, seq)` so the earliest entry is `last()` and pops
/// from the tail. An event at time `t` lives in bucket
/// `(t / width) % nbuckets`; equal times therefore share a bucket, which
/// is what preserves the FIFO tie-break exactly.
#[derive(Debug)]
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Milliseconds per bucket.
    width: u64,
    /// Bucket currently being scanned.
    cur: usize,
    /// Exclusive upper time bound of the current scan window.
    cur_top: u64,
    /// Entries resident across all buckets (live + tombstoned).
    size: usize,
    /// Sequence numbers currently resident, for O(1) `cancel` liveness.
    /// Fixed-seed hashing keeps the allocation profile reproducible
    /// (this set churns on every push/pop).
    resident: DetHashSet<u64>,
}

const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 17;

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1_000,
            cur: 0,
            cur_top: 1_000,
            size: 0,
            resident: DetHashSet::default(),
        }
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_millis() / self.width) as usize) % self.buckets.len()
    }

    /// Insert preserving the bucket's descending `(at, seq)` order.
    fn push(&mut self, entry: Entry<E>) {
        if self.size + 1 > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
        let b = self.bucket_of(entry.at);
        let key = (entry.at, entry.seq);
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|e| (e.at, e.seq) > key);
        bucket.insert(pos, entry);
        self.resident.insert(key.1);
        self.size += 1;
        // An event earlier than the current scan window re-anchors the
        // scan so the next pop cannot walk past it.
        let at_ms = key.0.as_millis();
        if at_ms < self.cur_top.saturating_sub(self.width) {
            self.cur = b;
            self.cur_top = (at_ms / self.width + 1) * self.width;
        }
    }

    /// Position `cur`/`cur_top` on the bucket whose tail entry is the
    /// global minimum, returning its key. `None` if the calendar is empty.
    fn seek_min(&mut self) -> Option<(SimTime, u64)> {
        if self.size == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut cur = self.cur;
        let mut top = self.cur_top;
        for _ in 0..n {
            if let Some(e) = self.buckets[cur].last() {
                if e.at.as_millis() < top {
                    self.cur = cur;
                    self.cur_top = top;
                    return Some((e.at, e.seq));
                }
            }
            cur = (cur + 1) % n;
            top += self.width;
        }
        // A full year passed with nothing in-window: jump straight to the
        // global minimum (the classic calendar-queue escape for sparse
        // far-future events).
        let (b, at) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bk)| bk.last().map(|e| (i, (e.at, e.seq))))
            .min_by_key(|&(_, key)| key)
            .map(|(i, (at, _))| (i, at))
            .expect("size > 0 but no entries");
        self.cur = b;
        self.cur_top = (at.as_millis() / self.width + 1) * self.width;
        let e = self.buckets[b].last().expect("bucket non-empty");
        Some((e.at, e.seq))
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        self.seek_min()?;
        let entry = self.buckets[self.cur].pop().expect("seek found an entry");
        self.size -= 1;
        self.resident.remove(&entry.seq);
        if self.size < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some(entry)
    }

    /// Rebucket every entry into `nbuckets` buckets, re-deriving the
    /// width from the resident time span. Pure re-hash: pop order is
    /// unaffected.
    fn resize(&mut self, nbuckets: usize) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.size);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        let (mut min_at, mut max_at) = (u64::MAX, 0u64);
        for e in &entries {
            min_at = min_at.min(e.at.as_millis());
            max_at = max_at.max(e.at.as_millis());
        }
        self.width = if entries.len() >= 2 {
            ((max_at - min_at) / entries.len() as u64).clamp(1, 3_600_000)
        } else {
            1_000
        };
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        if entries.is_empty() {
            self.cur = 0;
            self.cur_top = self.width;
        } else {
            self.cur = ((min_at / self.width) as usize) % nbuckets;
            self.cur_top = (min_at / self.width + 1) * self.width;
        }
        self.size = 0;
        let resident = std::mem::take(&mut self.resident);
        for e in entries {
            let b = self.bucket_of(e.at);
            let key = (e.at, e.seq);
            let bucket = &mut self.buckets[b];
            let pos = bucket.partition_point(|x| (x.at, x.seq) > key);
            bucket.insert(pos, e);
            self.size += 1;
        }
        self.resident = resident;
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.size = 0;
        self.resident.clear();
        self.cur = 0;
        self.cur_top = self.width;
    }
}

#[derive(Debug)]
enum Store<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(Calendar<E>),
}

/// The simulation's event queue and clock.
///
/// `now()` advances monotonically as events are popped; scheduling in the
/// past is a logic error and panics in debug builds (clamped to `now` in
/// release builds, which keeps long benches running if a model computes a
/// zero-length delay from float jitter).
///
/// ```
/// use dualboot_des::queue::EventQueue;
/// use dualboot_des::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimDuration::from_secs(5), "reboot done");
/// let stale = q.schedule(SimDuration::from_secs(2), "poll");
/// q.cancel(stale);
/// let (t, event) = q.pop().unwrap();
/// assert_eq!(t.as_secs(), 5);
/// assert_eq!(event, "reboot done");
/// assert_eq!(q.now(), t);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    store: Store<E>,
    cancelled: DetHashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    fired: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`], on the
    /// reference heap backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Heap)
    }

    /// An empty queue on the chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let store = match backend {
            QueueBackend::Heap => Store::Heap(BinaryHeap::new()),
            QueueBackend::Calendar => Store::Calendar(Calendar::new()),
        };
        EventQueue {
            store,
            cancelled: DetHashSet::default(),
            next_seq: 0,
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.store {
            Store::Heap(_) => QueueBackend::Heap,
            Store::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn pending(&self) -> usize {
        let resident = match &self.store {
            Store::Heap(h) => h.len(),
            Store::Calendar(c) => c.size,
        };
        resident - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` at the absolute instant `at`.
    ///
    /// Scheduling in the past panics in debug builds and clamps to `now`
    /// in release builds.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduled event in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, payload };
        match &mut self.store {
            Store::Heap(h) => h.push(Reverse(entry)),
            Store::Calendar(c) => c.push(entry),
        }
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false; // never issued
        }
        // An id counts as pending if some resident entry still carries it.
        let live = match &self.store {
            Store::Heap(h) => h.iter().any(|Reverse(e)| e.seq == id.0),
            Store::Calendar(c) => c.resident.contains(&id.0),
        };
        if live {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    fn pop_resident(&mut self) -> Option<Entry<E>> {
        match &mut self.store {
            Store::Heap(h) => h.pop().map(|Reverse(e)| e),
            Store::Calendar(c) => c.pop_min(),
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.pop_resident() {
            if self.cancelled.remove(&EventId(entry.seq)) {
                continue;
            }
            self.now = entry.at;
            self.fired += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it, pruning dead
    /// tombstones off the top of the store as it looks.
    ///
    /// Functionally identical to [`EventQueue::peek_time`] but cheap and
    /// amortised, at the cost of `&mut self`. Interleaved drivers (the
    /// grid federation loop) call this once per event per member, so the
    /// linear scan would dominate.
    pub fn next_time(&mut self) -> Option<SimTime> {
        loop {
            let front = match &mut self.store {
                Store::Heap(h) => h.peek().map(|Reverse(e)| (e.at, e.seq)),
                Store::Calendar(c) => c.seek_min(),
            };
            let (at, seq) = front?;
            let id = EventId(seq);
            if self.cancelled.contains(&id) {
                self.pop_resident();
                self.cancelled.remove(&id);
                continue;
            }
            return Some(at);
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.store {
            Store::Heap(h) => h
                .iter()
                .filter(|Reverse(e)| !self.cancelled.contains(&EventId(e.seq)))
                .map(|Reverse(e)| e.at)
                .min(),
            Store::Calendar(c) => c
                .buckets
                .iter()
                .flatten()
                .filter(|e| !self.cancelled.contains(&EventId(e.seq)))
                .map(|e| (e.at, e.seq))
                .min()
                .map(|(at, _)| at),
        }
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Heap(h) => h.clear(),
            Store::Calendar(c) => c.clear(),
        }
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::new()
    }

    /// Every behavioural test runs against both backends.
    fn on_both(test: impl Fn(EventQueue<&'static str>)) {
        test(EventQueue::with_backend(QueueBackend::Heap));
        test(EventQueue::with_backend(QueueBackend::Calendar));
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.schedule(SimDuration::from_secs(5), "b");
            q.schedule(SimDuration::from_secs(1), "a");
            q.schedule(SimDuration::from_secs(9), "c");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, ["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        on_both(|mut q| {
            for name in ["first", "second", "third"] {
                q.schedule(SimDuration::from_secs(1), name);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, ["first", "second", "third"]);
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|mut q| {
            q.schedule(SimDuration::from_secs(3), "x");
            q.schedule(SimDuration::from_secs(7), "y");
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(3));
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(7));
        });
    }

    #[test]
    fn relative_schedule_is_from_now() {
        on_both(|mut q| {
            q.schedule(SimDuration::from_secs(10), "a");
            q.pop();
            q.schedule(SimDuration::from_secs(5), "b");
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(15));
        });
    }

    #[test]
    fn cancel_prevents_firing() {
        on_both(|mut q| {
            let keep = q.schedule(SimDuration::from_secs(1), "keep");
            let drop = q.schedule(SimDuration::from_secs(2), "drop");
            assert!(q.cancel(drop));
            let _ = keep;
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, ["keep"]);
        });
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        on_both(|mut q| {
            let id = q.schedule(SimDuration::from_secs(1), "x");
            assert!(q.cancel(id));
            assert!(!q.cancel(id));
            assert!(!q.cancel(EventId(999)));
        });
    }

    #[test]
    fn cancelled_after_fire_returns_false() {
        on_both(|mut q| {
            let id = q.schedule(SimDuration::from_secs(1), "x");
            q.pop();
            assert!(!q.cancel(id));
        });
    }

    #[test]
    fn pending_excludes_cancelled() {
        on_both(|mut q| {
            q.schedule(SimDuration::from_secs(1), "a");
            let id = q.schedule(SimDuration::from_secs(2), "b");
            q.cancel(id);
            assert_eq!(q.pending(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        on_both(|mut q| {
            let id = q.schedule(SimDuration::from_secs(1), "a");
            q.schedule(SimDuration::from_secs(5), "b");
            q.cancel(id);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        });
    }

    #[test]
    fn next_time_matches_peek_and_prunes_tombstones() {
        on_both(|mut q| {
            let id = q.schedule(SimDuration::from_secs(1), "a");
            q.schedule(SimDuration::from_secs(5), "b");
            q.cancel(id);
            assert_eq!(q.next_time(), q.peek_time());
            assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
            // Pruning must not change what pops.
            assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
            assert_eq!(q.next_time(), None);
        });
    }

    #[test]
    fn fired_counts_only_live_events() {
        on_both(|mut q| {
            let id = q.schedule(SimDuration::from_secs(1), "a");
            q.schedule(SimDuration::from_secs(2), "b");
            q.cancel(id);
            while q.pop().is_some() {}
            assert_eq!(q.fired(), 1);
        });
    }

    #[test]
    fn clear_empties_queue_but_keeps_clock() {
        on_both(|mut q| {
            q.schedule(SimDuration::from_secs(1), "a");
            q.pop();
            q.schedule(SimDuration::from_secs(1), "b");
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.now(), SimTime::from_secs(1));
        });
    }

    #[test]
    fn default_backend_is_heap() {
        assert_eq!(q().backend(), QueueBackend::Heap);
        assert_eq!(
            EventQueue::<u32>::with_backend(QueueBackend::Calendar).backend(),
            QueueBackend::Calendar
        );
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!("heap".parse::<QueueBackend>().unwrap(), QueueBackend::Heap);
        assert_eq!(
            "calendar".parse::<QueueBackend>().unwrap(),
            QueueBackend::Calendar
        );
        assert!("fibonacci".parse::<QueueBackend>().is_err());
    }

    /// Deterministic pseudo-random interleaving of schedule / pop /
    /// cancel on both backends must produce identical histories. This is
    /// the in-crate smoke version of the cross-backend property test in
    /// `tests/properties.rs`.
    #[test]
    fn backends_agree_on_mixed_workload() {
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut state = 0x2012_c105_7e20u64 ^ 0xdead_beef;
        let mut next = move || {
            // xorshift64 — cheap deterministic op mixing.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ids: Vec<(EventId, EventId)> = Vec::new();
        for step in 0..5_000u64 {
            match next() % 10 {
                0..=5 => {
                    let delay = SimDuration::from_millis(next() % 50_000);
                    let payload = step;
                    let h = heap.schedule(delay, payload);
                    let c = cal.schedule(delay, payload);
                    ids.push((h, c));
                }
                6..=7 => {
                    assert_eq!(heap.pop(), cal.pop());
                    assert_eq!(heap.now(), cal.now());
                }
                8 => {
                    if !ids.is_empty() {
                        let (h, c) = ids[(next() % ids.len() as u64) as usize];
                        assert_eq!(heap.cancel(h), cal.cancel(c));
                    }
                }
                _ => {
                    assert_eq!(heap.next_time(), cal.next_time());
                    assert_eq!(heap.pending(), cal.pending());
                }
            }
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(heap.fired(), cal.fired());
    }

    /// The calendar must stay exact through grow/shrink resizes.
    #[test]
    fn calendar_survives_resizes() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        // Push far more than MIN_BUCKETS * 2 to force growth, with heavy
        // ties to stress the FIFO tie-break, then drain to force shrink.
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for i in 0..2_000u64 {
            let at = (i * 7919) % 97; // many collisions
            q.schedule_at(SimTime::from_millis(at), i);
            expect.push((at, i));
        }
        expect.sort();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_millis(), i)).collect();
        assert_eq!(got, expect);
    }

    /// Sparse far-future events exercise the full-year wrap escape.
    #[test]
    fn calendar_handles_sparse_far_future() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.schedule_at(SimTime::from_secs(5), "near");
        q.schedule_at(SimTime::from_mins(60 * 24 * 30), "far");
        q.schedule_at(SimTime::from_mins(60 * 24 * 365), "farther");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        q.schedule(SimDuration::from_secs(1), "wedged");
        assert_eq!(q.pop().map(|(_, e)| e), Some("wedged"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("farther"));
        assert!(q.pop().is_none());
    }
}
