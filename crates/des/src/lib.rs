#![warn(missing_docs)]

//! # dualboot-des — deterministic discrete-event simulation engine
//!
//! The substrate every simulated component of the reproduction runs on.
//! The paper's system ("dualboot-oscar", IEEE CLUSTER 2012) is a feedback
//! loop between job queues, head-node daemons and rebooting compute nodes;
//! reproducing it without the physical Eridani cluster requires a simulated
//! clock and event queue with strict determinism so that every experiment in
//! EXPERIMENTS.md can be regenerated bit-for-bit from a seed.
//!
//! The engine is deliberately minimal and dependency-light:
//!
//! * [`time`] — millisecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`queue`] — a cancellable, FIFO-stable event queue ([`queue::EventQueue`]).
//! * [`hash`] — fixed-seed hash collections so even the *allocation
//!   profile* of a run is reproducible ([`hash::DetHashMap`]).
//! * [`rng`] — seeded random streams with common distributions
//!   ([`rng::DetRng`]).
//! * [`stats`] — online statistics: mean/variance, percentiles and
//!   time-weighted averages (used for utilisation curves).
//! * [`trace`] — a typed trace recorder for post-hoc assertions on event
//!   order (e.g. the Figure-11 five-step control protocol).
//!
//! Higher layers define their own event enums and drive the loop themselves;
//! the engine only guarantees ordering: events fire in `(time, insertion
//! sequence)` order, so two events scheduled for the same instant fire in the
//! order they were scheduled.

pub mod hash;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use hash::{DetHashMap, DetHashSet};
pub use queue::{EventId, EventQueue, QueueBackend};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
