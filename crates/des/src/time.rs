//! Simulated time.
//!
//! Millisecond resolution is enough for the reproduced system: the paper's
//! finest-grained timing artefact is the `sleep 10` in the Figure-4 switch
//! job; everything else (poll cycles, reboots) is minutes. `u64` milliseconds
//! overflow after ~584 million years of simulated time, so arithmetic is
//! plain saturating/checked integer math.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in milliseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Raw milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional hours since simulation start (used for plots).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1000.0).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    /// Renders as `[ddd+]hh:mm:ss.mmm`, the format used in trace dumps.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1000;
        let s = (self.0 / 1000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = (self.0 / 3_600_000) % 24;
        let d = self.0 / 86_400_000;
        if d > 0 {
            write!(f, "{d}+{h:02}:{m:02}:{s:02}.{ms:03}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 60_000 {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else if self.0 < 3_600_000 {
            write!(f, "{:.1}min", self.as_mins_f64())
        } else {
            write!(f, "{:.2}h", self.0 as f64 / 3_600_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn subtraction_yields_duration() {
        let d = SimTime::from_secs(15) - SimTime::from_secs(10);
        assert_eq!(d, SimDuration::from_secs(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let d = SimTime::from_secs(1).saturating_since(SimTime::from_secs(5));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_inversion() {
        assert!(SimTime::from_secs(1)
            .checked_since(SimTime::from_secs(5))
            .is_none());
        assert_eq!(
            SimTime::from_secs(5).checked_since(SimTime::from_secs(1)),
            Some(SimDuration::from_secs(4))
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.2345), SimDuration::from_millis(1235));
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_723_004).to_string(), "01:02:03.004");
        assert_eq!(
            (SimTime::from_mins(60 * 25) + SimDuration::from_millis(1)).to_string(),
            "1+01:00:00.001"
        );
        assert_eq!(SimDuration::from_millis(500).to_string(), "500ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5min");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    #[test]
    fn saturating_arithmetic_on_durations() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(5);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(2));
        assert_eq!(SimDuration::MAX.saturating_add(a), SimDuration::MAX);
        assert_eq!(a.saturating_mul(4), SimDuration::from_secs(12));
    }
}
