//! Typed trace recorder.
//!
//! Integration tests assert on the *order* of control-plane actions (the
//! paper's Figure 11 numbers its protocol steps 1–5); the recorder keeps a
//! chronological list of `(time, event)` pairs plus helpers for those
//! ordering assertions. Recording can be disabled for long benches.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A boxed event predicate for [`Trace::contains_subsequence`].
pub type EventPred<'a, E> = Box<dyn FnMut(&E) -> bool + 'a>;

/// A chronological trace of typed events.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace<E> {
    enabled: bool,
    entries: Vec<(SimTime, E)>,
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Trace<E> {
    /// An enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// A disabled trace: `record` becomes a no-op (for long benches).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event at time `t` (no-op when disabled).
    pub fn record(&mut self, t: SimTime, e: E) {
        if self.enabled {
            self.entries.push((t, e));
        }
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[(SimTime, E)] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over events matching a predicate.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&E) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (SimTime, E)> + 'a {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }

    /// First entry matching the predicate.
    pub fn first_matching(&self, mut pred: impl FnMut(&E) -> bool) -> Option<&(SimTime, E)> {
        self.entries.iter().find(|(_, e)| pred(e))
    }

    /// Checks that for every consecutive pair of predicates, some matching
    /// events occur in that order (a subsequence match). This is how tests
    /// assert the Figure-11 step order without pinning unrelated events.
    pub fn contains_subsequence(&self, preds: &mut [EventPred<'_, E>]) -> bool {
        let mut idx = 0;
        for (_, e) in &self.entries {
            if idx == preds.len() {
                break;
            }
            if preds[idx](e) {
                idx += 1;
            }
        }
        idx == preds.len()
    }

    /// Drop all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Ev {
        Poll,
        Decide(u32),
        Reboot(u32),
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new();
        tr.record(t(1), Ev::Poll);
        tr.record(t(2), Ev::Decide(3));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.entries()[1].1, Ev::Decide(3));
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut tr = Trace::disabled();
        tr.record(t(1), Ev::Poll);
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn matching_filters() {
        let mut tr = Trace::new();
        tr.record(t(1), Ev::Poll);
        tr.record(t(2), Ev::Reboot(1));
        tr.record(t(3), Ev::Reboot(2));
        assert_eq!(tr.matching(|e| matches!(e, Ev::Reboot(_))).count(), 2);
        assert_eq!(
            tr.first_matching(|e| matches!(e, Ev::Reboot(_))).unwrap().0,
            t(2)
        );
    }

    #[test]
    fn subsequence_match_succeeds_in_order() {
        let mut tr = Trace::new();
        tr.record(t(1), Ev::Poll);
        tr.record(t(2), Ev::Decide(2));
        tr.record(t(3), Ev::Poll);
        tr.record(t(4), Ev::Reboot(7));
        let ok = tr.contains_subsequence(&mut [
            Box::new(|e: &Ev| matches!(e, Ev::Poll)),
            Box::new(|e: &Ev| matches!(e, Ev::Decide(_))),
            Box::new(|e: &Ev| matches!(e, Ev::Reboot(_))),
        ]);
        assert!(ok);
    }

    #[test]
    fn subsequence_match_fails_out_of_order() {
        let mut tr = Trace::new();
        tr.record(t(1), Ev::Reboot(7));
        tr.record(t(2), Ev::Poll);
        let ok = tr.contains_subsequence(&mut [
            Box::new(|e: &Ev| matches!(e, Ev::Poll)),
            Box::new(|e: &Ev| matches!(e, Ev::Reboot(_))),
        ]);
        assert!(!ok);
    }

    #[test]
    fn clear_empties() {
        let mut tr = Trace::new();
        tr.record(t(1), Ev::Poll);
        tr.clear();
        assert!(tr.is_empty());
    }
}
