//! Deterministic hashing for simulation-internal collections.
//!
//! `std`'s default `RandomState` seeds SipHash differently in every
//! process. That never changes *simulation results* (nothing iterates
//! these maps in an order-sensitive way), but it does change the
//! **allocation profile**: hashbrown's probe chains — and therefore its
//! tombstone-vs-grow decisions on churny insert/remove workloads like
//! event cancellation — depend on the hash values, so peak heap and
//! allocation counts wobble from run to run. `dualboot campaign` promises
//! byte-identical reports including per-cell heap stats, which makes the
//! allocator's behaviour part of the determinism contract.
//!
//! [`DetState`] is a fixed-seed `BuildHasher` (FNV-1a with an avalanche
//! finisher, the same mixer as [`crate::rng::DetRng`]'s SplitMix64 core).
//! It is also faster than SipHash for the short integer keys these
//! collections hold, which matters on the event-queue cancel path.

use std::hash::{BuildHasher, Hasher};

/// A `HashMap` whose layout (and so allocation profile) is identical in
/// every process.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetState>;

/// A `HashSet` whose layout is identical in every process.
pub type DetHashSet<T> = std::collections::HashSet<T, DetState>;

/// Fixed-seed [`BuildHasher`]: every process, every run, same layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher(0xcbf2_9ce4_8422_2325) // FNV-1a 64-bit offset basis
    }
}

/// FNV-1a accumulator with a SplitMix64-style finisher so short integer
/// keys still spread across hashbrown's high control bits.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        DetState.hash_one(v)
    }

    #[test]
    fn same_input_same_hash_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"reboot"), hash_of(&"reboot"));
    }

    #[test]
    fn nearby_keys_spread_across_high_bits() {
        // hashbrown takes the top 7 bits for its control bytes; sequential
        // event ids must not all share them.
        let mut top_bytes = std::collections::BTreeSet::new();
        for i in 0u64..64 {
            top_bytes.insert(hash_of(&i) >> 57);
        }
        assert!(top_bytes.len() > 16, "only {} distinct ctrl values", top_bytes.len());
    }

    #[test]
    fn det_collections_behave_like_std() {
        let mut set: DetHashSet<u64> = DetHashSet::default();
        for i in 0..1_000u64 {
            set.insert(i);
        }
        for i in (0..1_000u64).step_by(2) {
            set.remove(&i);
        }
        assert_eq!(set.len(), 500);
        assert!(set.contains(&1) && !set.contains(&2));

        let mut map: DetHashMap<u64, u32> = DetHashMap::default();
        map.insert(7, 1);
        *map.entry(7).or_insert(0) += 1;
        assert_eq!(map[&7], 2);
    }
}
