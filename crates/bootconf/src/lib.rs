#![warn(missing_docs)]

//! # dualboot-bootconf — the configuration dialects of dualboot-oscar
//!
//! The middleware in the paper never calls an API to change what a node
//! boots: it **edits text files**. Five dialects appear in the paper's
//! figures, and this crate gives each a typed model with a parser and an
//! emitter whose output reproduces the corresponding figure byte-for-byte:
//!
//! | Module | Dialect | Paper figures |
//! |---|---|---|
//! | [`grub`] | GRUB legacy `menu.lst` / `controlmenu.lst` | 2, 3 |
//! | [`grub4dos`] | GRUB4DOS PXE menu tree (`/tftpboot/menu.lst/<MAC>`) | §IV.A.1 |
//! | [`diskpart`] | Windows HPC `diskpart.txt` deployment scripts | 9, 10, 15 |
//! | [`idedisk`] | OSCAR/systemimager `ide.disk` partition tables | 14 |
//! | [`mac`] | MAC addresses used to key PXE menu files | §IV.A.1 |
//! | [`oscarimage`] | systemimager `oscarimage.master` scripts and the four v1 manual edits | §III.C.1 |
//!
//! Everything round-trips: `emit(parse(text)) == text` for the canonical
//! style, which property tests in each module enforce.

pub mod arena;
pub mod diskpart;
pub mod error;
pub mod grub;
pub mod grub4dos;
pub mod idedisk;
pub mod mac;
pub mod node;
pub mod os;
pub mod oscarimage;

pub use error::ParseError;
pub use mac::MacAddr;
pub use node::NodeId;
pub use os::OsKind;
