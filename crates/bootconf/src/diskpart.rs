//! Windows `diskpart.txt` deployment scripts.
//!
//! Windows HPC 2008 R2 stores the disk-preparation script its deployment
//! tool runs on every compute node as clear text under
//! `C:\Program Files\Microsoft HPC Pack 2008 R2\Data\InstallShare\Config\diskpart.txt`
//! (paper §III.C.2). dualboot-oscar patches this file three ways:
//!
//! * **Figure 9** — the stock script: `clean`s the whole disk and creates
//!   one full-size NTFS partition (destroying Linux).
//! * **Figure 10** — v1's patch: `create partition primary size=150000`
//!   reserves only 150 GB of the 250 GB disk for Windows, leaving room for
//!   Linux — but still `clean`s, so Windows must be installed *first* and
//!   every Windows reinstall forces a Linux reinstall.
//! * **Figure 15** — v2's reimage script: selects the existing partition 1
//!   and reformats it in place, never touching the Linux partitions or MBR.
//!
//! The semantic difference between these scripts (what survives a run) is
//! executed against the disk model in `dualboot-hw`; this module is the
//! faithful text representation.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};

const DIALECT: &str = "diskpart.txt";

/// One diskpart command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskpartCmd {
    /// `select disk N`
    SelectDisk(u32),
    /// `select partition N` (1-based, as diskpart counts)
    SelectPartition(u32),
    /// `clean` — wipe the partition table **and the MBR boot code**.
    Clean,
    /// `create partition primary [size=MB]`
    CreatePartitionPrimary {
        /// Size in megabytes; `None` means "use the whole disk".
        size_mb: Option<u64>,
    },
    /// `assign letter=C`
    AssignLetter(char),
    /// `format FS=<fs> LABEL="<label>" [QUICK] [OVERRIDE]`
    Format {
        /// Filesystem (`NTFS`, `FAT32`).
        fs: String,
        /// Volume label.
        label: String,
        /// `QUICK` flag present.
        quick: bool,
        /// `OVERRIDE` flag present.
        override_: bool,
    },
    /// `active` — mark the selected partition active.
    Active,
    /// `exit`
    Exit,
}

/// A parsed `diskpart.txt` script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskpartScript {
    /// Commands in execution order.
    pub commands: Vec<DiskpartCmd>,
}

impl DiskpartScript {
    /// Parse script text. Keywords are case-insensitive (diskpart is), but
    /// emission uses the exact casing of the paper's figures.
    pub fn parse(text: &str) -> Result<DiskpartScript, ParseError> {
        let mut commands = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with("rem") || line.starts_with("REM") {
                continue;
            }
            commands.push(Self::parse_line(line, lineno)?);
        }
        Ok(DiskpartScript { commands })
    }

    fn parse_line(line: &str, lineno: usize) -> Result<DiskpartCmd, ParseError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let lower: Vec<String> = words.iter().map(|w| w.to_ascii_lowercase()).collect();
        let num = |s: &str| -> Result<u32, ParseError> {
            s.parse()
                .map_err(|_| ParseError::at(DIALECT, lineno, format!("bad number {s:?}")))
        };
        match lower.first().map(String::as_str) {
            Some("select") => match lower.get(1).map(String::as_str) {
                Some("disk") => Ok(DiskpartCmd::SelectDisk(num(
                    words.get(2).copied().unwrap_or(""),
                )?)),
                Some("partition") => Ok(DiskpartCmd::SelectPartition(num(
                    words.get(2).copied().unwrap_or(""),
                )?)),
                _ => Err(ParseError::at(DIALECT, lineno, "select disk|partition N")),
            },
            Some("clean") => Ok(DiskpartCmd::Clean),
            Some("create") => {
                if lower.get(1).map(String::as_str) == Some("partition")
                    && lower.get(2).map(String::as_str) == Some("primary")
                {
                    let mut size_mb = None;
                    for w in &lower[3..] {
                        if let Some(v) = w.strip_prefix("size=") {
                            size_mb = Some(v.parse().map_err(|_| {
                                ParseError::at(DIALECT, lineno, format!("bad size {v:?}"))
                            })?);
                        } else {
                            return Err(ParseError::at(
                                DIALECT,
                                lineno,
                                format!("unknown create option {w:?}"),
                            ));
                        }
                    }
                    Ok(DiskpartCmd::CreatePartitionPrimary { size_mb })
                } else {
                    Err(ParseError::at(DIALECT, lineno, "create partition primary"))
                }
            }
            Some("assign") => {
                let arg = lower.get(1).map(String::as_str).unwrap_or("");
                let letter = arg.strip_prefix("letter=").and_then(|s| s.chars().next());
                match letter {
                    Some(c) if c.is_ascii_alphabetic() => Ok(DiskpartCmd::AssignLetter(c)),
                    _ => Err(ParseError::at(DIALECT, lineno, "assign letter=X")),
                }
            }
            Some("format") => {
                let mut fs = None;
                let mut label = None;
                let mut quick = false;
                let mut override_ = false;
                for w in &words[1..] {
                    let wl = w.to_ascii_lowercase();
                    if let Some(v) = wl.strip_prefix("fs=") {
                        fs = Some(v.to_ascii_uppercase());
                    } else if wl.starts_with("label=") {
                        // keep original case, strip quotes
                        let v = &w["label=".len()..];
                        label = Some(v.trim_matches('"').to_string());
                    } else if wl == "quick" {
                        quick = true;
                    } else if wl == "override" {
                        override_ = true;
                    } else {
                        return Err(ParseError::at(
                            DIALECT,
                            lineno,
                            format!("unknown format option {w:?}"),
                        ));
                    }
                }
                Ok(DiskpartCmd::Format {
                    fs: fs
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "format needs FS="))?,
                    label: label.unwrap_or_default(),
                    quick,
                    override_,
                })
            }
            Some("active") => Ok(DiskpartCmd::Active),
            Some("exit") => Ok(DiskpartCmd::Exit),
            _ => Err(ParseError::at(
                DIALECT,
                lineno,
                format!("unknown command {line:?}"),
            )),
        }
    }

    /// Emit canonical text (the exact casing of Figures 9/10/15).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for c in &self.commands {
            match c {
                DiskpartCmd::SelectDisk(n) => out.push_str(&format!("select disk {n}\n")),
                DiskpartCmd::SelectPartition(n) => {
                    out.push_str(&format!("select partition {n}\n"))
                }
                DiskpartCmd::Clean => out.push_str("clean\n"),
                DiskpartCmd::CreatePartitionPrimary { size_mb } => match size_mb {
                    Some(s) => out.push_str(&format!("create partition primary size={s}\n")),
                    None => out.push_str("create partition primary\n"),
                },
                DiskpartCmd::AssignLetter(l) => out.push_str(&format!("assign letter={l}\n")),
                DiskpartCmd::Format {
                    fs,
                    label,
                    quick,
                    override_,
                } => {
                    out.push_str(&format!("format FS={fs} LABEL=\"{label}\""));
                    if *quick {
                        out.push_str(" QUICK");
                    }
                    if *override_ {
                        out.push_str(" OVERRIDE");
                    }
                    out.push('\n');
                }
                DiskpartCmd::Active => out.push_str("active\n"),
                DiskpartCmd::Exit => out.push_str("exit\n"),
            }
        }
        out
    }

    /// Does this script run `clean` (i.e. destroy the partition table and
    /// MBR)? This is the property that forces v1's "Windows first, Linux
    /// reinstalled after every Windows reimage" ordering.
    pub fn wipes_disk(&self) -> bool {
        self.commands.iter().any(|c| matches!(c, DiskpartCmd::Clean))
    }

    /// The stock Windows HPC script of Figure 9.
    pub fn original() -> DiskpartScript {
        DiskpartScript {
            commands: vec![
                DiskpartCmd::SelectDisk(0),
                DiskpartCmd::Clean,
                DiskpartCmd::CreatePartitionPrimary { size_mb: None },
                DiskpartCmd::AssignLetter('c'),
                DiskpartCmd::Format {
                    fs: "NTFS".to_string(),
                    label: "Node".to_string(),
                    quick: true,
                    override_: true,
                },
                DiskpartCmd::Active,
                DiskpartCmd::Exit,
            ],
        }
    }

    /// dualboot-oscar v1.0's patched script of Figure 10: identical to the
    /// stock script but reserves only `size_mb` (150 000 MB on Eridani's
    /// 250 GB disks) for Windows.
    pub fn modified_v1(size_mb: u64) -> DiskpartScript {
        let mut s = Self::original();
        s.commands[2] = DiskpartCmd::CreatePartitionPrimary {
            size_mb: Some(size_mb),
        };
        s
    }

    /// dualboot-oscar v2.0's reimage script of Figure 15: reformats the
    /// existing Windows partition in place without `clean`, preserving the
    /// Linux partitions.
    pub fn reimage_v2() -> DiskpartScript {
        DiskpartScript {
            commands: vec![
                DiskpartCmd::SelectDisk(0),
                DiskpartCmd::SelectPartition(1),
                DiskpartCmd::Format {
                    fs: "NTFS".to_string(),
                    label: "Node".to_string(),
                    quick: true,
                    override_: true,
                },
                DiskpartCmd::Active,
                DiskpartCmd::Exit,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 9, verbatim.
    const FIG9: &str = "select disk 0\n\
clean\n\
create partition primary\n\
assign letter=c\n\
format FS=NTFS LABEL=\"Node\" QUICK OVERRIDE\n\
active\n\
exit\n";

    /// Figure 10, verbatim.
    const FIG10: &str = "select disk 0\n\
clean\n\
create partition primary size=150000\n\
assign letter=c\n\
format FS=NTFS LABEL=\"Node\" QUICK OVERRIDE\n\
active\n\
exit\n";

    /// Figure 15, verbatim.
    const FIG15: &str = "select disk 0\n\
select partition 1\n\
format FS=NTFS LABEL=\"Node\" QUICK OVERRIDE\n\
active\n\
exit\n";

    #[test]
    fn fig9_emits_verbatim() {
        assert_eq!(DiskpartScript::original().emit(), FIG9);
    }

    #[test]
    fn fig10_emits_verbatim() {
        assert_eq!(DiskpartScript::modified_v1(150_000).emit(), FIG10);
    }

    #[test]
    fn fig15_emits_verbatim() {
        assert_eq!(DiskpartScript::reimage_v2().emit(), FIG15);
    }

    #[test]
    fn figures_roundtrip() {
        for text in [FIG9, FIG10, FIG15] {
            let s = DiskpartScript::parse(text).unwrap();
            assert_eq!(s.emit(), text);
        }
    }

    #[test]
    fn wipe_classification() {
        assert!(DiskpartScript::original().wipes_disk());
        assert!(DiskpartScript::modified_v1(150_000).wipes_disk());
        assert!(!DiskpartScript::reimage_v2().wipes_disk());
    }

    #[test]
    fn parse_is_case_insensitive() {
        let s = DiskpartScript::parse("SELECT DISK 0\nCLEAN\nEXIT\n").unwrap();
        assert_eq!(s.commands[0], DiskpartCmd::SelectDisk(0));
        assert!(s.wipes_disk());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DiskpartScript::parse("explode disk 0\n").is_err());
        assert!(DiskpartScript::parse("select disk x\n").is_err());
        assert!(DiskpartScript::parse("create partition primary size=abc\n").is_err());
        assert!(DiskpartScript::parse("format LABEL=\"x\"\n").is_err()); // no FS=
        assert!(DiskpartScript::parse("assign letter=\n").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let err = DiskpartScript::parse("select disk 0\nnonsense\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn format_without_flags() {
        let s = DiskpartScript::parse("format FS=FAT32 LABEL=\"BOOT\"\n").unwrap();
        assert_eq!(
            s.commands[0],
            DiskpartCmd::Format {
                fs: "FAT32".to_string(),
                label: "BOOT".to_string(),
                quick: false,
                override_: false,
            }
        );
        assert_eq!(s.emit(), "format FS=FAT32 LABEL=\"BOOT\"\n");
    }

    #[test]
    fn rem_comments_and_blanks_skipped() {
        let s = DiskpartScript::parse("rem prepare disk\n\nselect disk 0\n").unwrap();
        assert_eq!(s.commands.len(), 1);
    }
}
