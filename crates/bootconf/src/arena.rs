//! Dense, id-keyed arenas for per-node and per-job state.
//!
//! The simulator and both schedulers historically kept per-node state in
//! `BTreeMap<NodeId, _>` / `HashMap<u16, _>` and per-node job lists as one
//! heap-allocated `Vec` per node. At 65536 nodes the pointer-chasing and
//! allocator traffic dominate the dispatch loops, so this module provides
//! struct-of-arrays building blocks keyed by the existing [`NodeId`]
//! newtype:
//!
//! * [`IdSet`] — a dense bitset over 1-based ids whose iteration order is
//!   ascending id, bit-compatible with the `BTreeSet<NodeId>` indexes it
//!   replaces.
//! * [`IdVec`] — a dense `id → T` map (a `Vec<Option<T>>` indexed by
//!   [`NodeId::index0`]) replacing hash maps that are only ever probed,
//!   never iterated.
//! * [`ListSlab`] — one shared slab holding every node's job list as an
//!   intrusive linked list, preserving per-list insertion order; the
//!   free-list recycles cells so steady-state dispatch allocates nothing.
//! * [`Sequence`] — an append-only `id → T` store for records issued with
//!   consecutive ids from a base (scheduler jobs), replacing
//!   `BTreeMap<u64, T>`.
//!
//! Everything here is deterministic by construction: iteration orders
//! depend only on the sequence of mutating calls, never on hashing.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A dense set of [`NodeId`]s with ascending-id iteration.
///
/// Drop-in replacement for the `BTreeSet<NodeId>` placement indexes: the
/// same elements iterate in the same (ascending) order, with O(1) insert,
/// remove and contains, and a word-wise scan instead of tree walking.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> Self {
        IdSet::default()
    }

    /// An empty set pre-sized for ids `1..=capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IdSet {
            words: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
        }
    }

    fn slot(id: NodeId) -> (usize, u64) {
        let bit = id.index0();
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Insert `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        debug_assert!(id.get() != 0, "NodeId(0) is not a valid node");
        let (word, mask) = Self::slot(id);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (word, mask) = Self::slot(id);
        match self.words.get_mut(word) {
            Some(w) if *w & mask != 0 => {
                *w &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        let (word, mask) = Self::slot(id);
        self.words.get(word).is_some_and(|w| w & mask != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no ids are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// The smallest id present, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Ids in ascending order (the `BTreeSet` iteration order).
    pub fn iter(&self) -> IdSetIter<'_> {
        IdSetIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<NodeId> for IdSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = IdSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = NodeId;
    type IntoIter = IdSetIter<'a>;
    fn into_iter(self) -> IdSetIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over an [`IdSet`].
#[derive(Debug, Clone)]
pub struct IdSetIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for IdSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::from_index0(self.word_index * 64 + bit))
    }
}

/// A dense `NodeId → T` map backed by a `Vec<Option<T>>`.
///
/// Replaces `HashMap<node, T>` for per-node state that is probed by key
/// but never iterated: lookups become a bounds-checked array index and the
/// live count stays O(1) for `done()`-style emptiness checks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdVec<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for IdVec<T> {
    fn default() -> Self {
        IdVec {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> IdVec<T> {
    /// An empty map.
    pub fn new() -> Self {
        IdVec::default()
    }

    /// An empty map pre-sized for ids `1..=capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IdVec {
            slots: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Insert or replace the value for `id`, returning the previous one.
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let i = id.index0();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        self.live += usize::from(old.is_none());
        old
    }

    /// Remove and return the value for `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let old = self.slots.get_mut(id.index0()).and_then(Option::take);
        self.live -= usize::from(old.is_some());
        old
    }

    /// Shared access to the value for `id`.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.slots.get(id.index0()).and_then(Option::as_ref)
    }

    /// Exclusive access to the value for `id`.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots.get_mut(id.index0()).and_then(Option::as_mut)
    }

    /// Exclusive access, inserting `default()` first if `id` is absent.
    pub fn get_or_insert_with(&mut self, id: NodeId, default: impl FnOnce() -> T) -> &mut T {
        let i = id.index0();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(default());
            self.live += 1;
        }
        self.slots[i].as_mut().expect("slot just filled")
    }

    /// True if `id` has a value.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Number of ids with a value.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no id has a value.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Remove every value (capacity is kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.live = 0;
    }

    /// Live `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeId::from_index0(i), v)))
    }
}

const NIL: u32 = u32::MAX;

/// A handle to one list inside a [`ListSlab`]. The empty list is
/// [`ListRef::EMPTY`] (also its `Default`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListRef {
    head: u32,
    tail: u32,
    len: u32,
}

impl ListRef {
    /// The empty list.
    pub const EMPTY: ListRef = ListRef {
        head: NIL,
        tail: NIL,
        len: 0,
    };

    /// Number of elements in this list.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True if the list has no elements.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

impl Default for ListRef {
    fn default() -> Self {
        ListRef::EMPTY
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell<T> {
    value: Option<T>,
    next: u32,
}

/// One shared slab holding many insertion-ordered lists.
///
/// Every per-node job list lives in the same backing `Vec`; freed cells go
/// on an internal free-list and are recycled in LIFO order, so after
/// warm-up the dispatch/complete cycle performs no allocation. Lists are
/// addressed through [`ListRef`] handles owned by the caller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ListSlab<T> {
    cells: Vec<Cell<T>>,
    free_head: u32,
    live: usize,
}

impl<T> Default for ListSlab<T> {
    fn default() -> Self {
        ListSlab {
            cells: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }
}

impl<T> ListSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        ListSlab::default()
    }

    /// Total elements across every list in the slab.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of allocated cells (live + free).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Length of the internal free-list.
    pub fn free_len(&self) -> usize {
        self.capacity() - self.live
    }

    fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let cell = &mut self.cells[idx as usize];
            debug_assert!(cell.value.is_none(), "free-list yielded a live cell");
            self.free_head = cell.next;
            cell.value = Some(value);
            cell.next = NIL;
            idx
        } else {
            let idx = u32::try_from(self.cells.len()).expect("slab capacity fits u32");
            self.cells.push(Cell {
                value: Some(value),
                next: NIL,
            });
            idx
        }
    }

    fn free(&mut self, idx: u32) -> T {
        let cell = &mut self.cells[idx as usize];
        let value = cell.value.take().expect("freed cell was live");
        cell.next = self.free_head;
        self.free_head = idx;
        self.live -= 1;
        value
    }

    /// Append `value` to `list`, preserving insertion order.
    pub fn push(&mut self, list: &mut ListRef, value: T) {
        let idx = self.alloc(value);
        if list.tail == NIL {
            list.head = idx;
        } else {
            self.cells[list.tail as usize].next = idx;
        }
        list.tail = idx;
        list.len += 1;
    }

    /// Keep only the elements of `list` for which `keep` returns true
    /// (the `Vec::retain` of the slab world). Relative order is preserved.
    pub fn retain(&mut self, list: &mut ListRef, mut keep: impl FnMut(&T) -> bool) {
        let mut idx = list.head;
        let mut prev = NIL;
        while idx != NIL {
            let next = self.cells[idx as usize].next;
            let stays = keep(self.cells[idx as usize].value.as_ref().expect("list cell live"));
            if stays {
                prev = idx;
            } else {
                if prev == NIL {
                    list.head = next;
                } else {
                    self.cells[prev as usize].next = next;
                }
                if list.tail == idx {
                    list.tail = prev;
                }
                list.len -= 1;
                self.free(idx);
            }
            idx = next;
        }
    }

    /// Remove every element of `list`, returning the cells to the
    /// free-list.
    pub fn clear_list(&mut self, list: &mut ListRef) {
        let mut idx = list.head;
        while idx != NIL {
            let next = self.cells[idx as usize].next;
            self.free(idx);
            idx = next;
        }
        *list = ListRef::EMPTY;
    }

    /// The elements of `list` in insertion order.
    pub fn iter<'a>(&'a self, list: &ListRef) -> ListIter<'a, T> {
        ListIter {
            slab: self,
            idx: list.head,
        }
    }

    /// Clone the elements of `list` into a `Vec`, in insertion order.
    pub fn to_vec(&self, list: &ListRef) -> Vec<T>
    where
        T: Clone,
    {
        self.iter(list).cloned().collect()
    }

    /// Walk the free-list, returning the freed cell indexes in pop order.
    /// Exposed for invariant tests.
    pub fn free_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut idx = self.free_head;
        while idx != NIL {
            out.push(idx as usize);
            idx = self.cells[idx as usize].next;
        }
        out
    }

    /// True if cell `idx` currently holds a value. Exposed for invariant
    /// tests.
    pub fn is_live(&self, idx: usize) -> bool {
        self.cells.get(idx).is_some_and(|c| c.value.is_some())
    }

    /// Check the structural invariants: the free-list visits every dead
    /// cell exactly once and never a live one, and `live_len` equals the
    /// number of cells holding values. Panics on violation.
    pub fn assert_invariants(&self) {
        let free = self.free_indices();
        for &idx in &free {
            assert!(!self.is_live(idx), "free-list yielded live cell {idx}");
        }
        let dead = self.cells.iter().filter(|c| c.value.is_none()).count();
        assert_eq!(free.len(), dead, "free-list misses dead cells");
        assert_eq!(
            self.live,
            self.cells.len() - dead,
            "live counter out of sync"
        );
    }
}

/// Iterator over one list inside a [`ListSlab`].
#[derive(Debug)]
pub struct ListIter<'a, T> {
    slab: &'a ListSlab<T>,
    idx: u32,
}

impl<'a, T> Iterator for ListIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.idx == NIL {
            return None;
        }
        let cell = &self.slab.cells[self.idx as usize];
        self.idx = cell.next;
        cell.value.as_ref()
    }
}

/// An append-only `u64-id → T` store for records issued with consecutive
/// ids starting at `base` (PBS numbers jobs from 1185, WinHPC from 1).
///
/// Replaces `BTreeMap<u64, T>` where keys are handed out by the same
/// counter that indexes the store: lookups are a subtraction and an array
/// index, and iteration (ascending id) is a linear walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequence<T> {
    base: u64,
    items: Vec<T>,
}

impl<T> Sequence<T> {
    /// An empty store whose first pushed item gets id `base`.
    pub fn new(base: u64) -> Self {
        Sequence {
            base,
            items: Vec::new(),
        }
    }

    /// The id the next [`push`](Self::push) will occupy.
    pub fn next_id(&self) -> u64 {
        self.base + self.items.len() as u64
    }

    /// Renumber an empty store to start at `base` (PBS renumbers to the
    /// paper's figure range after construction). Panics if items exist.
    pub fn set_base(&mut self, base: u64) {
        assert!(self.items.is_empty(), "set_base on non-empty Sequence");
        self.base = base;
    }

    /// Append `value`, returning its id.
    pub fn push(&mut self, value: T) -> u64 {
        let id = self.next_id();
        self.items.push(value);
        id
    }

    /// Shared access by id.
    pub fn get(&self, id: u64) -> Option<&T> {
        let i = id.checked_sub(self.base)?;
        self.items.get(usize::try_from(i).ok()?)
    }

    /// Exclusive access by id.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let i = id.checked_sub(self.base)?;
        self.items.get_mut(usize::try_from(i).ok()?)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idset_matches_btreeset_order() {
        use std::collections::BTreeSet;
        let ids = [65u32, 1, 64, 2, 128, 63, 300];
        let mut set = IdSet::new();
        let mut reference = BTreeSet::new();
        for id in ids {
            assert_eq!(set.insert(NodeId(id)), reference.insert(NodeId(id)));
        }
        assert!(!set.insert(NodeId(64)));
        reference.insert(NodeId(64));
        let dense: Vec<NodeId> = set.iter().collect();
        let tree: Vec<NodeId> = reference.iter().copied().collect();
        assert_eq!(dense, tree);
        assert_eq!(set.len(), reference.len());
        assert_eq!(set.first(), reference.first().copied());
        assert!(set.remove(NodeId(64)));
        assert!(!set.remove(NodeId(64)));
        assert!(!set.contains(NodeId(64)));
        assert!(set.contains(NodeId(65)));
    }

    #[test]
    fn idset_handles_word_boundaries() {
        let mut set = IdSet::new();
        for id in [64u32, 65, 128, 129] {
            set.insert(NodeId(id));
        }
        let got: Vec<u32> = set.iter().map(NodeId::get).collect();
        assert_eq!(got, [64, 65, 128, 129]);
    }

    #[test]
    fn idvec_probe_and_counts() {
        let mut m: IdVec<&str> = IdVec::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(5), "five"), None);
        assert_eq!(m.insert(NodeId(5), "FIVE"), Some("five"));
        m.insert(NodeId(2), "two");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(NodeId(5)), Some(&"FIVE"));
        assert_eq!(m.remove(NodeId(5)), Some("FIVE"));
        assert_eq!(m.remove(NodeId(5)), None);
        assert_eq!(m.len(), 1);
        let pairs: Vec<(u32, &str)> = m.iter().map(|(id, v)| (id.get(), *v)).collect();
        assert_eq!(pairs, [(2, "two")]);
        *m.get_or_insert_with(NodeId(9), || "nine") = "NINE";
        assert_eq!(m.get(NodeId(9)), Some(&"NINE"));
    }

    #[test]
    fn listslab_preserves_insertion_order_and_recycles() {
        let mut slab: ListSlab<u32> = ListSlab::new();
        let mut a = ListRef::EMPTY;
        let mut b = ListRef::EMPTY;
        slab.push(&mut a, 1);
        slab.push(&mut b, 10);
        slab.push(&mut a, 2);
        slab.push(&mut a, 3);
        assert_eq!(slab.to_vec(&a), [1, 2, 3]);
        assert_eq!(slab.to_vec(&b), [10]);
        slab.retain(&mut a, |v| *v != 2);
        assert_eq!(slab.to_vec(&a), [1, 3]);
        assert_eq!(a.len(), 2);
        slab.assert_invariants();
        // The freed cell is recycled before the slab grows.
        let cap = slab.capacity();
        slab.push(&mut b, 11);
        assert_eq!(slab.capacity(), cap);
        assert_eq!(slab.to_vec(&b), [10, 11]);
        slab.clear_list(&mut a);
        assert!(a.is_empty());
        assert_eq!(slab.live_len(), 2);
        slab.assert_invariants();
    }

    #[test]
    fn listslab_retain_updates_tail() {
        let mut slab: ListSlab<u32> = ListSlab::new();
        let mut l = ListRef::EMPTY;
        for v in [1, 2, 3] {
            slab.push(&mut l, v);
        }
        slab.retain(&mut l, |v| *v != 3);
        slab.push(&mut l, 4);
        assert_eq!(slab.to_vec(&l), [1, 2, 4]);
        slab.retain(&mut l, |_| false);
        assert!(l.is_empty());
        slab.push(&mut l, 5);
        assert_eq!(slab.to_vec(&l), [5]);
        slab.assert_invariants();
    }

    #[test]
    fn sequence_ids_from_base() {
        let mut s: Sequence<&str> = Sequence::new(1);
        s.set_base(1185);
        assert_eq!(s.next_id(), 1185);
        assert_eq!(s.push("a"), 1185);
        assert_eq!(s.push("b"), 1186);
        assert_eq!(s.get(1185), Some(&"a"));
        assert_eq!(s.get(1184), None);
        assert_eq!(s.get(1187), None);
        *s.get_mut(1186).unwrap() = "B";
        let all: Vec<&str> = s.iter().copied().collect();
        assert_eq!(all, ["a", "B"]);
        assert_eq!(s.len(), 2);
    }
}
