//! Shared parse-error type for all config dialects.

use std::fmt;

/// A parse failure in one of the config dialects, with the 1-based line
/// number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 when not line-specific).
    pub line: usize,
    /// Which dialect was being parsed (`"menu.lst"`, `"diskpart.txt"`, ...).
    pub dialect: &'static str,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Construct an error at a specific line.
    pub fn at(dialect: &'static str, line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            dialect,
            message: message.into(),
        }
    }

    /// Construct an error not tied to a line.
    pub fn general(dialect: &'static str, message: impl Into<String>) -> Self {
        ParseError {
            line: 0,
            dialect,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.dialect, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.dialect, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_line() {
        let e = ParseError::at("menu.lst", 3, "unknown directive");
        assert_eq!(e.to_string(), "menu.lst:3: unknown directive");
    }

    #[test]
    fn display_general() {
        let e = ParseError::general("ide.disk", "empty file");
        assert_eq!(e.to_string(), "ide.disk: empty file");
    }
}
