//! The cluster-wide compute-node identifier.
//!
//! Lives in `bootconf` (the bottom of the crate stack) so that every layer
//! — boot configuration, schedulers, daemons, the cluster simulator and
//! grid reports — can share one newtype without dependency cycles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 1-based compute-node identifier (`NodeId(1)` is `enode01`), matching
/// the Eridani hostname and fault-plan numbering. The newtype keeps trace
/// events, fault schedules and simulator accessors agreeing on what a
/// "node number" means — historically some APIs took a raw 1-based integer
/// and others a 0-based index, a reliable source of off-by-one bugs.
///
/// The payload is `u32` so the scale sweeps can address 65536-node
/// clusters (a `u16` tops out one short: ids are 1-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The 1-based node number (what the hostname carries).
    pub fn get(self) -> u32 {
        self.0
    }

    /// The 0-based index into dense per-node arrays. `NodeId(0)` is not a
    /// valid node; callers should never construct one, and this saturates
    /// rather than wrapping if they do.
    pub fn index0(self) -> usize {
        self.0.saturating_sub(1) as usize
    }

    /// The [`NodeId`] for a 0-based dense-array index (inverse of
    /// [`index0`](Self::index0)).
    pub fn from_index0(index: usize) -> Self {
        NodeId(u32::try_from(index + 1).unwrap_or(u32::MAX))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:02}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index_1based: u32) -> Self {
        NodeId(index_1based)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_index0() {
        assert_eq!(NodeId(1).index0(), 0);
        assert_eq!(NodeId::from_index0(0), NodeId(1));
        assert_eq!(NodeId::from_index0(NodeId(4096).index0()), NodeId(4096));
        assert_eq!(NodeId::from_index0(NodeId(65536).index0()), NodeId(65536));
    }

    #[test]
    fn display_matches_hostname_numbering() {
        assert_eq!(NodeId(7).to_string(), "node07");
        assert_eq!(NodeId(128).to_string(), "node128");
    }
}
