//! OSCAR/systemimager `ide.disk` partition tables.
//!
//! OSCAR builds compute-node images from a disk layout file (`ide.disk`)
//! consumed by systemimager/systeminstaller. dualboot-oscar v1.0 required
//! manually editing this file (and the generated `oscarimage.master`) after
//! *every* image rebuild — inserting the FAT control partition, reserving
//! Windows space, switching `mkpart` to `mkpartfs`, adding rsync FAT flags
//! and removing Windows lines from `fstab` (paper §III.C.1). v2.0 instead
//! patches systemimager/systeminstaller once to honour a new partition
//! *type label* `skip`: a `skip` line reserves the space without imaging it,
//! which is how the Windows partition survives Linux re-imaging (Figure 14).
//!
//! A line has the whitespace-separated columns
//! `device  size  type  [mountpoint  [options]]  [bootable]`, where size is
//! megabytes, `*` (fill the rest of the disk) or `-` (not applicable).

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

const DIALECT: &str = "ide.disk";

/// The size column of an `ide.disk` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeSpec {
    /// Fixed size in megabytes.
    Mb(u64),
    /// `*` — fill the remaining disk space.
    Fill,
    /// `-` — size not applicable (tmpfs, nfs).
    None,
}

impl fmt::Display for SizeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeSpec::Mb(n) => write!(f, "{n}"),
            SizeSpec::Fill => write!(f, "*"),
            SizeSpec::None => write!(f, "-"),
        }
    }
}

/// Filesystem / partition type column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsType {
    /// Linux ext3 (the node image's native format).
    Ext3,
    /// Swap space.
    Swap,
    /// FAT/vfat (the v1 shared control partition).
    Vfat,
    /// NTFS (only used when describing the Windows partition explicitly).
    Ntfs,
    /// tmpfs pseudo-filesystem.
    Tmpfs,
    /// NFS mount from the head node.
    Nfs,
    /// The v2 patch's label: reserve the space, do not image it.
    Skip,
}

impl FsType {
    fn parse(s: &str, lineno: usize) -> Result<FsType, ParseError> {
        match s {
            "ext3" => Ok(FsType::Ext3),
            "swap" => Ok(FsType::Swap),
            "vfat" | "fat" | "fat32" => Ok(FsType::Vfat),
            "ntfs" => Ok(FsType::Ntfs),
            "tmpfs" => Ok(FsType::Tmpfs),
            "nfs" => Ok(FsType::Nfs),
            "skip" => Ok(FsType::Skip),
            _ => Err(ParseError::at(
                DIALECT,
                lineno,
                format!("unknown fs type {s:?}"),
            )),
        }
    }

    fn emit(&self) -> &'static str {
        match self {
            FsType::Ext3 => "ext3",
            FsType::Swap => "swap",
            FsType::Vfat => "vfat",
            FsType::Ntfs => "ntfs",
            FsType::Tmpfs => "tmpfs",
            FsType::Nfs => "nfs",
            FsType::Skip => "skip",
        }
    }
}

/// One line of an `ide.disk` file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdeDiskLine {
    /// Device path (`/dev/sda1`) or NFS source (`nfs_oscar:/home`).
    pub device: String,
    /// Size column.
    pub size: SizeSpec,
    /// Type column.
    pub fstype: FsType,
    /// Mount point, when given (swap and skip lines have none).
    pub mountpoint: Option<String>,
    /// Mount options, when given (`defaults`, `rw`, ...).
    pub options: Option<String>,
    /// Trailing `bootable` flag.
    pub bootable: bool,
}

/// A parsed `ide.disk` file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdeDisk {
    /// Lines in file order.
    pub lines: Vec<IdeDiskLine>,
}

impl IdeDisk {
    /// Parse `ide.disk` text. `#` comments and blank lines are skipped.
    pub fn parse(text: &str) -> Result<IdeDisk, ParseError> {
        let mut lines = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace().peekable();
            let device = cols
                .next()
                .ok_or_else(|| ParseError::at(DIALECT, lineno, "missing device"))?
                .to_string();
            let size_s = cols
                .next()
                .ok_or_else(|| ParseError::at(DIALECT, lineno, "missing size"))?;
            let size = match size_s {
                "*" => SizeSpec::Fill,
                "-" => SizeSpec::None,
                n => SizeSpec::Mb(n.parse().map_err(|_| {
                    ParseError::at(DIALECT, lineno, format!("bad size {n:?}"))
                })?),
            };
            let fstype = FsType::parse(
                cols.next()
                    .ok_or_else(|| ParseError::at(DIALECT, lineno, "missing fs type"))?,
                lineno,
            )?;
            let mut rest: Vec<String> = cols.map(str::to_string).collect();
            let bootable = rest.last().map(String::as_str) == Some("bootable");
            if bootable {
                rest.pop();
            }
            if rest.len() > 2 {
                return Err(ParseError::at(
                    DIALECT,
                    lineno,
                    format!("too many columns in {line:?}"),
                ));
            }
            let mut rest = rest.into_iter();
            let mountpoint = rest.next();
            let options = rest.next();
            lines.push(IdeDiskLine {
                device,
                size,
                fstype,
                mountpoint,
                options,
                bootable,
            });
        }
        Ok(IdeDisk { lines })
    }

    /// Emit canonical single-space-separated text (the paper's Figure 14
    /// shows PDF-justified columns; the canonical machine form is single
    /// spaces, which round-trips).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&l.device);
            out.push(' ');
            out.push_str(&l.size.to_string());
            out.push(' ');
            out.push_str(l.fstype.emit());
            if let Some(m) = &l.mountpoint {
                out.push(' ');
                out.push_str(m);
            }
            if let Some(o) = &l.options {
                out.push(' ');
                out.push_str(o);
            }
            if l.bootable {
                out.push_str(" bootable");
            }
            out.push('\n');
        }
        out
    }

    /// True if any line carries the v2 `skip` label (requires the patched
    /// systemimager/systeminstaller to deploy).
    pub fn uses_skip(&self) -> bool {
        self.lines.iter().any(|l| l.fstype == FsType::Skip)
    }

    /// Total megabytes of fixed-size physical partitions (`Mb` sizes on
    /// `/dev/` devices), used to validate against the disk capacity.
    pub fn fixed_mb(&self) -> u64 {
        self.lines
            .iter()
            .filter(|l| l.device.starts_with("/dev/") && l.fstype != FsType::Tmpfs)
            .filter_map(|l| match l.size {
                SizeSpec::Mb(n) => Some(n),
                _ => None,
            })
            .sum()
    }

    /// The Figure-14 `ide.disk` of dualboot-oscar v2.0: Windows space held
    /// by a `skip` line, Linux `/boot`, swap, `/` filling the rest, tmpfs
    /// and the NFS-mounted home directory from the OSCAR head node.
    pub fn eridani_v2() -> IdeDisk {
        IdeDisk {
            lines: vec![
                IdeDiskLine {
                    device: "/dev/sda1".to_string(),
                    size: SizeSpec::Mb(16_000),
                    fstype: FsType::Skip,
                    mountpoint: None,
                    options: None,
                    bootable: false,
                },
                IdeDiskLine {
                    device: "/dev/sda2".to_string(),
                    size: SizeSpec::Mb(100),
                    fstype: FsType::Ext3,
                    mountpoint: Some("/boot".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: true,
                },
                IdeDiskLine {
                    device: "/dev/sda5".to_string(),
                    size: SizeSpec::Mb(512),
                    fstype: FsType::Swap,
                    mountpoint: None,
                    options: None,
                    bootable: false,
                },
                IdeDiskLine {
                    device: "/dev/sda6".to_string(),
                    size: SizeSpec::Fill,
                    fstype: FsType::Ext3,
                    mountpoint: Some("/".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: false,
                },
                IdeDiskLine {
                    device: "/dev/shm".to_string(),
                    size: SizeSpec::None,
                    fstype: FsType::Tmpfs,
                    mountpoint: Some("/dev/shm".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: false,
                },
                IdeDiskLine {
                    device: "nfs_oscar:/home".to_string(),
                    size: SizeSpec::None,
                    fstype: FsType::Nfs,
                    mountpoint: Some("/home".to_string()),
                    options: Some("rw".to_string()),
                    bootable: false,
                },
            ],
        }
    }

    /// A reconstruction of the v1 hand-edited `ide.disk` (§III.C.1; no
    /// figure in the paper shows it whole). Differences from v2: the
    /// Windows space and the shared FAT control partition must be spelled
    /// out as real partitions (`ntfs` reserved + `vfat` mounted at
    /// `/boot/swap`, the path Figure 4's scripts use), because the stock
    /// systemimager has no `skip` label.
    pub fn eridani_v1() -> IdeDisk {
        IdeDisk {
            lines: vec![
                IdeDiskLine {
                    device: "/dev/sda1".to_string(),
                    size: SizeSpec::Mb(16_000),
                    fstype: FsType::Ntfs,
                    mountpoint: None,
                    options: None,
                    bootable: false,
                },
                IdeDiskLine {
                    device: "/dev/sda2".to_string(),
                    size: SizeSpec::Mb(100),
                    fstype: FsType::Ext3,
                    mountpoint: Some("/boot".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: true,
                },
                IdeDiskLine {
                    device: "/dev/sda5".to_string(),
                    size: SizeSpec::Mb(512),
                    fstype: FsType::Swap,
                    mountpoint: None,
                    options: None,
                    bootable: false,
                },
                // FAT control partition at sda6 = GRUB (hd0,5), the device
                // Figure 2's `root (hd0,5)` points at.
                IdeDiskLine {
                    device: "/dev/sda6".to_string(),
                    size: SizeSpec::Mb(64),
                    fstype: FsType::Vfat,
                    mountpoint: Some("/boot/swap".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: false,
                },
                // Root at sda7, matching Figure 3's `root=/dev/sda7`.
                IdeDiskLine {
                    device: "/dev/sda7".to_string(),
                    size: SizeSpec::Fill,
                    fstype: FsType::Ext3,
                    mountpoint: Some("/".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: false,
                },
                IdeDiskLine {
                    device: "/dev/shm".to_string(),
                    size: SizeSpec::None,
                    fstype: FsType::Tmpfs,
                    mountpoint: Some("/dev/shm".to_string()),
                    options: Some("defaults".to_string()),
                    bootable: false,
                },
                IdeDiskLine {
                    device: "nfs_oscar:/home".to_string(),
                    size: SizeSpec::None,
                    fstype: FsType::Nfs,
                    mountpoint: Some("/home".to_string()),
                    options: Some("rw".to_string()),
                    bootable: false,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 14, in canonical single-space form.
    const FIG14: &str = "/dev/sda1 16000 skip\n\
/dev/sda2 100 ext3 /boot defaults bootable\n\
/dev/sda5 512 swap\n\
/dev/sda6 * ext3 / defaults\n\
/dev/shm - tmpfs /dev/shm defaults\n\
nfs_oscar:/home - nfs /home rw\n";

    #[test]
    fn fig14_emits_verbatim() {
        assert_eq!(IdeDisk::eridani_v2().emit(), FIG14);
    }

    #[test]
    fn fig14_roundtrips() {
        let d = IdeDisk::parse(FIG14).unwrap();
        assert_eq!(d.emit(), FIG14);
        assert_eq!(d.lines.len(), 6);
    }

    #[test]
    fn v2_uses_skip_v1_does_not() {
        assert!(IdeDisk::eridani_v2().uses_skip());
        assert!(!IdeDisk::eridani_v1().uses_skip());
    }

    #[test]
    fn v1_has_explicit_fat_control_partition() {
        let v1 = IdeDisk::eridani_v1();
        let fat = v1
            .lines
            .iter()
            .find(|l| l.fstype == FsType::Vfat)
            .expect("v1 must carry the FAT control partition");
        assert_eq!(fat.mountpoint.as_deref(), Some("/boot/swap"));
        // sda6 = GRUB (hd0,5), the device Figure 2 redirects to
        assert_eq!(fat.device, "/dev/sda6");
        // and the root filesystem is sda7, matching Figure 3's kernel args
        let root = v1
            .lines
            .iter()
            .find(|l| l.mountpoint.as_deref() == Some("/"))
            .unwrap();
        assert_eq!(root.device, "/dev/sda7");
    }

    #[test]
    fn bootable_flag_parsed() {
        let d = IdeDisk::parse(FIG14).unwrap();
        assert!(d.lines[1].bootable);
        assert!(!d.lines[0].bootable);
    }

    #[test]
    fn swap_line_has_no_mountpoint() {
        let d = IdeDisk::parse(FIG14).unwrap();
        let swap = &d.lines[2];
        assert_eq!(swap.fstype, FsType::Swap);
        assert_eq!(swap.mountpoint, None);
    }

    #[test]
    fn size_specs_parse() {
        let d = IdeDisk::parse(FIG14).unwrap();
        assert_eq!(d.lines[0].size, SizeSpec::Mb(16_000));
        assert_eq!(d.lines[3].size, SizeSpec::Fill);
        assert_eq!(d.lines[4].size, SizeSpec::None);
    }

    #[test]
    fn fixed_mb_sums_physical_partitions() {
        // 16000 + 100 + 512 (fill, tmpfs and nfs excluded)
        assert_eq!(IdeDisk::eridani_v2().fixed_mb(), 16_612);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(IdeDisk::parse("/dev/sda1\n").is_err()); // missing size
        assert!(IdeDisk::parse("/dev/sda1 big ext3 /\n").is_err()); // bad size
        assert!(IdeDisk::parse("/dev/sda1 100 reiser4 /\n").is_err()); // unknown fs
        assert!(IdeDisk::parse("/dev/sda1 100 ext3 / defaults extra bootable\n").is_err());
    }

    #[test]
    fn comments_skipped() {
        let d = IdeDisk::parse("# layout\n/dev/sda1 100 ext3 / defaults\n").unwrap();
        assert_eq!(d.lines.len(), 1);
    }

    #[test]
    fn error_line_numbers() {
        let err = IdeDisk::parse("/dev/sda1 100 ext3 /\n/dev/sda2 oops ext3 /x\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
