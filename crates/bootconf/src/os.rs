//! The two operating systems of the bi-stable hybrid cluster.
//!
//! Lives in `bootconf` because every other layer (hardware boot paths,
//! schedulers, middleware, workloads) speaks in terms of which OS a node
//! boots, and boot configuration is the lowest layer that needs the notion.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// One of the two platforms of the hybrid cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OsKind {
    /// CentOS 5.x with OSCAR middleware and a PBS/Torque scheduler.
    Linux,
    /// Windows Server 2008 with Windows HPC Pack 2008 R2.
    Windows,
}

impl OsKind {
    /// Both platforms, in the canonical order used by reports.
    pub const ALL: [OsKind; 2] = [OsKind::Linux, OsKind::Windows];

    /// The other platform.
    pub fn other(self) -> OsKind {
        match self {
            OsKind::Linux => OsKind::Windows,
            OsKind::Windows => OsKind::Linux,
        }
    }

    /// Short lower-case tag used in file names and flags
    /// (`linux` / `windows`), matching the suffixes of the paper's
    /// `controlmenu_to_linux.lst` / `controlmenu_to_windows.lst`.
    pub fn tag(self) -> &'static str {
        match self {
            OsKind::Linux => "linux",
            OsKind::Windows => "windows",
        }
    }
}

impl Not for OsKind {
    type Output = OsKind;
    fn not(self) -> OsKind {
        self.other()
    }
}

impl fmt::Display for OsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsKind::Linux => write!(f, "Linux"),
            OsKind::Windows => write!(f, "Windows"),
        }
    }
}

impl std::str::FromStr for OsKind {
    type Err = crate::error::ParseError;

    /// Case-insensitive; accepts `linux`/`windows` and single letters
    /// `L`/`W` (the notation of the paper's Table I).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linux" | "l" => Ok(OsKind::Linux),
            "windows" | "w" => Ok(OsKind::Windows),
            _ => Err(crate::error::ParseError::general(
                "os",
                format!("unknown OS {s:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for os in OsKind::ALL {
            assert_eq!(os.other().other(), os);
            assert_eq!(!!os, os);
            assert_ne!(os.other(), os);
        }
    }

    #[test]
    fn tags() {
        assert_eq!(OsKind::Linux.tag(), "linux");
        assert_eq!(OsKind::Windows.tag(), "windows");
    }

    #[test]
    fn parse_forms() {
        assert_eq!("L".parse::<OsKind>().unwrap(), OsKind::Linux);
        assert_eq!("w".parse::<OsKind>().unwrap(), OsKind::Windows);
        assert_eq!("Windows".parse::<OsKind>().unwrap(), OsKind::Windows);
        assert!("beos".parse::<OsKind>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(OsKind::Linux.to_string(), "Linux");
        assert_eq!(OsKind::Windows.to_string(), "Windows");
    }
}
