//! GRUB4DOS PXE menu tree (`/tftpboot/menu.lst/`).
//!
//! dualboot-oscar v2.0 (paper §IV.A.1) abandons node-local boot control:
//! compute nodes PXE-boot a GRUB4DOS ROM served by the head node, and the
//! ROM fetches its menu file from the TFTP directory `menu.lst/`, named
//! after the node's MAC address. Because every menu file lives on the head
//! node, re-imaging a node's disk can no longer lose boot control (the MBR
//! no longer matters), and *any* reboot — soft reboot or physical power
//! reset — lands the node on whatever the head node currently dictates.
//!
//! The paper describes two designs:
//!
//! 1. **Per-node menus** (Figure 12, the initial approach): one menu file
//!    per MAC, so individual machines can be steered — but the OSCAR-side
//!    daemon "would not easily get information about which machine is
//!    scheduled to be rebooted".
//! 2. **Single flag** (Figure 13, the shipped approach): one cluster-wide
//!    target-OS flag; all rebooting nodes boot the same OS "because the
//!    whole dual-boot cluster will only need one system at one time".
//!
//! [`PxeMenuDir`] models the directory under both modes and resolves the
//! menu a given MAC would receive.

use crate::grub::{eridani, GrubConfig};
use crate::mac::MacAddr;
use crate::os::OsKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which control design the PXE directory is operating under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMode {
    /// One menu file per node MAC (Figure 12's initial approach).
    PerNode,
    /// A single cluster-wide target-OS flag (Figure 13, dualboot-oscar
    /// v2.0's shipped design).
    SingleFlag,
}

/// The head node's `/tftpboot/menu.lst/` directory.
///
/// In `SingleFlag` mode only the `default` menu file exists and carries the
/// flag; in `PerNode` mode per-MAC files override the `default` fallback.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PxeMenuDir {
    mode: ControlMode,
    /// Target OS written into the `default` menu file.
    flag: OsKind,
    /// Per-MAC overrides (only consulted in `PerNode` mode).
    per_node: BTreeMap<MacAddr, OsKind>,
    /// The menu every file is generated from (retargeted per node). Must
    /// match the node disks' partition layout — Figure 3's menu for the
    /// v1 layout, [`eridani::controlmenu_v2`] for the Figure-14 layout.
    template: GrubConfig,
    /// How many menu-file writes have been performed (deployment-effort
    /// metric for experiment E4/E8).
    writes: u64,
}

impl PxeMenuDir {
    /// A fresh directory in the given mode, with the flag initially at
    /// `flag` (Eridani came up Linux-first). Uses the Figure-3 menu as
    /// template (v1 disk layout, `/` on sda7).
    pub fn new(mode: ControlMode, flag: OsKind) -> Self {
        PxeMenuDir::with_template(mode, flag, eridani::controlmenu(flag))
    }

    /// The shipped v2 directory: single-flag control over nodes deployed
    /// with the Figure-14 layout (`/` on sda6).
    pub fn eridani_v2(flag: OsKind) -> Self {
        PxeMenuDir::with_template(
            ControlMode::SingleFlag,
            flag,
            eridani::controlmenu_v2(flag),
        )
    }

    /// A directory generating menus from an explicit template.
    pub fn with_template(mode: ControlMode, flag: OsKind, template: GrubConfig) -> Self {
        PxeMenuDir {
            mode,
            flag,
            per_node: BTreeMap::new(),
            template,
            writes: 1, // the initial `default` file
        }
    }

    /// Current control mode.
    pub fn mode(&self) -> ControlMode {
        self.mode
    }

    /// The cluster-wide target-OS flag.
    pub fn flag(&self) -> OsKind {
        self.flag
    }

    /// Number of menu-file writes performed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Set the cluster-wide flag ("flick flag of system architecture",
    /// Figure 13 step 2). One file write.
    pub fn set_flag(&mut self, os: OsKind) {
        if self.flag != os {
            self.flag = os;
            self.writes += 1;
        }
    }

    /// Steer one node (only meaningful in `PerNode` mode; Figure 12's
    /// "Send ID to head node / flick toggle" path). One file write.
    pub fn set_node(&mut self, mac: MacAddr, os: OsKind) {
        let prev = self.per_node.insert(mac, os);
        if prev != Some(os) {
            self.writes += 1;
        }
    }

    /// Remove a per-node override, reverting the node to the flag.
    pub fn clear_node(&mut self, mac: &MacAddr) {
        if self.per_node.remove(mac).is_some() {
            self.writes += 1;
        }
    }

    /// The OS a node with this MAC will boot on its next PXE cycle.
    pub fn target_for(&self, mac: &MacAddr) -> OsKind {
        match self.mode {
            ControlMode::SingleFlag => self.flag,
            ControlMode::PerNode => self.per_node.get(mac).copied().unwrap_or(self.flag),
        }
    }

    /// The TFTP file name GRUB4DOS requests for this MAC
    /// (`menu.lst/<mac-with-dashes>`), falling back to `menu.lst/default`.
    pub fn filename_for(&self, mac: &MacAddr) -> String {
        match self.mode {
            ControlMode::SingleFlag => "menu.lst/default".to_string(),
            ControlMode::PerNode => {
                if self.per_node.contains_key(mac) {
                    format!("menu.lst/{}", mac.grub4dos_filename())
                } else {
                    "menu.lst/default".to_string()
                }
            }
        }
    }

    /// Render the menu file a node with this MAC receives. GRUB4DOS menu
    /// syntax is compatible with GRUB legacy for the chainload/kernel
    /// entries this system uses, so the content is the template menu with
    /// `default` pointed at the node's target.
    pub fn menu_for(&self, mac: &MacAddr) -> GrubConfig {
        let mut menu = self.template.clone();
        menu.retarget(self.target_for(mac));
        menu
    }

    /// Number of distinct menu files currently present in the directory.
    pub fn file_count(&self) -> usize {
        match self.mode {
            ControlMode::SingleFlag => 1,
            ControlMode::PerNode => 1 + self.per_node.len(),
        }
    }

    /// Switch control designs (the paper's v2 evolution from Figure 12 to
    /// Figure 13). Entering `SingleFlag` drops all per-node files.
    pub fn set_mode(&mut self, mode: ControlMode) {
        if self.mode != mode {
            self.mode = mode;
            if mode == ControlMode::SingleFlag && !self.per_node.is_empty() {
                self.writes += self.per_node.len() as u64; // deletions count as writes
                self.per_node.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grub::BootTarget;

    fn mac(i: u32) -> MacAddr {
        MacAddr::for_node(i)
    }

    #[test]
    fn single_flag_steers_everyone() {
        let mut dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
        assert_eq!(dir.target_for(&mac(1)), OsKind::Linux);
        assert_eq!(dir.target_for(&mac(16)), OsKind::Linux);
        dir.set_flag(OsKind::Windows);
        assert_eq!(dir.target_for(&mac(1)), OsKind::Windows);
        assert_eq!(dir.target_for(&mac(16)), OsKind::Windows);
    }

    #[test]
    fn per_node_overrides_fall_back_to_flag() {
        let mut dir = PxeMenuDir::new(ControlMode::PerNode, OsKind::Linux);
        dir.set_node(mac(3), OsKind::Windows);
        assert_eq!(dir.target_for(&mac(3)), OsKind::Windows);
        assert_eq!(dir.target_for(&mac(4)), OsKind::Linux);
        dir.clear_node(&mac(3));
        assert_eq!(dir.target_for(&mac(3)), OsKind::Linux);
    }

    #[test]
    fn menu_content_boots_the_target() {
        let mut dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
        dir.set_flag(OsKind::Windows);
        let menu = dir.menu_for(&mac(5));
        assert_eq!(
            menu.default_entry().unwrap().boot_target(),
            BootTarget::Os(OsKind::Windows)
        );
    }

    #[test]
    fn filenames_follow_grub4dos_convention() {
        let mut dir = PxeMenuDir::new(ControlMode::PerNode, OsKind::Linux);
        assert_eq!(dir.filename_for(&mac(1)), "menu.lst/default");
        dir.set_node(mac(1), OsKind::Windows);
        assert_eq!(dir.filename_for(&mac(1)), "menu.lst/02-00-51-47-00-01");
        let flag_dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
        assert_eq!(flag_dir.filename_for(&mac(1)), "menu.lst/default");
    }

    #[test]
    fn write_counting() {
        let mut dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
        let w0 = dir.writes();
        dir.set_flag(OsKind::Linux); // no-op
        assert_eq!(dir.writes(), w0);
        dir.set_flag(OsKind::Windows);
        assert_eq!(dir.writes(), w0 + 1);
    }

    #[test]
    fn file_count_per_mode() {
        let mut dir = PxeMenuDir::new(ControlMode::PerNode, OsKind::Linux);
        assert_eq!(dir.file_count(), 1);
        dir.set_node(mac(1), OsKind::Windows);
        dir.set_node(mac(2), OsKind::Windows);
        assert_eq!(dir.file_count(), 3);
        dir.set_mode(ControlMode::SingleFlag);
        assert_eq!(dir.file_count(), 1);
        assert_eq!(dir.target_for(&mac(1)), OsKind::Linux); // overrides gone
    }

    #[test]
    fn single_flag_needs_one_write_for_any_fleet_size() {
        // The crux of the Figure-13 simplification: steering N nodes costs
        // one write in SingleFlag mode but N writes in PerNode mode.
        let mut flag_dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
        let w0 = flag_dir.writes();
        flag_dir.set_flag(OsKind::Windows);
        assert_eq!(flag_dir.writes() - w0, 1);

        let mut node_dir = PxeMenuDir::new(ControlMode::PerNode, OsKind::Linux);
        let w0 = node_dir.writes();
        for i in 0..16 {
            node_dir.set_node(mac(i), OsKind::Windows);
        }
        assert_eq!(node_dir.writes() - w0, 16);
    }
}
