//! MAC addresses.
//!
//! GRUB4DOS's PXE ROM looks up its menu file by the compute node's LAN-card
//! MAC address (paper §IV.A.1); this type provides both the canonical
//! colon-separated form and the dash-separated lower-case form GRUB4DOS
//! uses for file names under `/tftpboot/menu.lst/`.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A deterministic MAC for node `index` in the simulated cluster,
    /// under the locally-administered prefix `02:00:51:47`
    /// ("QG" for Queensgate Grid). Indexes past 65535 spill into the
    /// fourth octet, so MACs for the first 65535 nodes are unchanged
    /// from the historical `u16` numbering.
    pub fn for_node(index: u32) -> MacAddr {
        let [hi, lo] = (index as u16).to_be_bytes();
        let spill = 0x47u8.wrapping_add((index >> 16) as u8);
        MacAddr([0x02, 0x00, 0x51, spill, hi, lo])
    }

    /// Colon-separated lower-case form: `02:00:51:47:00:01`.
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// GRUB4DOS menu-file name form: dash-separated lower-case, e.g.
    /// `02-00-51-47-00-01` (the name of the per-node file under
    /// `/tftpboot/menu.lst/`).
    pub fn grub4dos_filename(&self) -> String {
        let b = self.0;
        format!(
            "{:02x}-{:02x}-{:02x}-{:02x}-{:02x}-{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = ParseError;

    /// Accepts colon- or dash-separated hex pairs, case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sep = if s.contains(':') { ':' } else { '-' };
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() != 6 {
            return Err(ParseError::general(
                "mac",
                format!("expected 6 octets, got {} in {s:?}", parts.len()),
            ));
        }
        let mut bytes = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            bytes[i] = u8::from_str_radix(p, 16)
                .map_err(|_| ParseError::general("mac", format!("bad octet {p:?} in {s:?}")))?;
        }
        Ok(MacAddr(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_macs_are_distinct_and_stable() {
        assert_eq!(MacAddr::for_node(1).to_string(), "02:00:51:47:00:01");
        assert_eq!(MacAddr::for_node(256).to_string(), "02:00:51:47:01:00");
        assert_ne!(MacAddr::for_node(1), MacAddr::for_node(2));
    }

    #[test]
    fn node_macs_past_u16_spill_into_fourth_octet() {
        assert_eq!(MacAddr::for_node(65535).to_string(), "02:00:51:47:ff:ff");
        assert_eq!(MacAddr::for_node(65536).to_string(), "02:00:51:48:00:00");
        assert_ne!(MacAddr::for_node(1), MacAddr::for_node(65537));
    }

    #[test]
    fn grub4dos_filename_form() {
        assert_eq!(
            MacAddr::for_node(16).grub4dos_filename(),
            "02-00-51-47-00-10"
        );
    }

    #[test]
    fn parses_colon_and_dash() {
        let m: MacAddr = "02:00:51:47:00:01".parse().unwrap();
        assert_eq!(m, MacAddr::for_node(1));
        let m: MacAddr = "02-00-51-47-00-01".parse().unwrap();
        assert_eq!(m, MacAddr::for_node(1));
    }

    #[test]
    fn parses_uppercase() {
        let m: MacAddr = "AA:BB:CC:DD:EE:FF".parse().unwrap();
        assert_eq!(m.0, [0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]);
    }

    #[test]
    fn rejects_malformed() {
        assert!("02:00:51".parse::<MacAddr>().is_err());
        assert!("02:00:51:47:00:zz".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn roundtrip() {
        let m = MacAddr::for_node(42);
        assert_eq!(m.to_string().parse::<MacAddr>().unwrap(), m);
        assert_eq!(m.grub4dos_filename().parse::<MacAddr>().unwrap(), m);
    }
}
