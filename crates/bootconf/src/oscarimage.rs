//! The systemimager `oscarimage.master` deployment script.
//!
//! OSCAR's image builder generates a master shell script that partitions
//! and populates each compute node. dualboot-oscar v1.0 required four
//! manual edits to this generated script *after every image rebuild*
//! (§III.C.1):
//!
//! 1. reserve the Windows and FAT partitions in `ide.disk` (upstream of
//!    this script, see [`crate::idedisk`]);
//! 2. replace `mkpart` with `mkpartfs` so the FAT partition is actually
//!    formatted;
//! 3. add `--modify-window=1 --size-only` to the rsync commands so FAT's
//!    coarse timestamps don't force endless re-syncs;
//! 4. remove the Windows partition's `fstab` line and `umount` commands
//!    so the installer doesn't error on the foreign partition.
//!
//! This module models the script at the statement level, implements each
//! edit as a function, and can *verify* whether a script has been
//! correctly patched — which is how the deployment engine decides whether
//! a v1 image build will produce a working dual-boot node or a broken
//! one. v2.0 makes all of this obsolete (the `skip` label patch), which
//! is exactly the point of experiment E4.

use crate::error::ParseError;
use crate::idedisk::{FsType, IdeDisk, SizeSpec};
use serde::{Deserialize, Serialize};

const DIALECT: &str = "oscarimage.master";

/// One statement of the master script (the subset the edits touch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MasterStmt {
    /// `parted ... mkpart primary|logical <fs> <start> <end>` — allocate
    /// without formatting.
    MkPart {
        /// Partition number being created.
        number: u32,
        /// Filesystem label parted records.
        fs: String,
    },
    /// `parted ... mkpartfs ...` — allocate *and* format (edit 2 turns
    /// the FAT `MkPart` into this).
    MkPartFs {
        /// Partition number being created.
        number: u32,
        /// Filesystem created.
        fs: String,
    },
    /// `rsync [flags] image/ /a/<mount>` — populate a filesystem.
    Rsync {
        /// Target mount point.
        target: String,
        /// Extra flags (edit 3 adds `--modify-window=1 --size-only`).
        flags: Vec<String>,
    },
    /// An `/etc/fstab` line written into the node image.
    FstabLine {
        /// Device column.
        device: String,
        /// Mount point column.
        mountpoint: String,
    },
    /// `umount /a/<mount>` during cleanup.
    Umount {
        /// Mount point being unmounted.
        mountpoint: String,
    },
}

/// A parsed/generated master script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterScript {
    /// Statements in execution order.
    pub stmts: Vec<MasterStmt>,
}

/// The patch state of a v1 master script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchStatus {
    /// Edit 2: the FAT partition uses `mkpartfs`.
    pub fat_mkpartfs: bool,
    /// Edit 3: every FAT-touching rsync carries the FAT flags.
    pub rsync_fat_flags: bool,
    /// Edit 4a: no fstab line references the Windows partition.
    pub windows_fstab_removed: bool,
    /// Edit 4b: no umount references the Windows partition.
    pub windows_umount_removed: bool,
}

impl PatchStatus {
    /// All edits applied?
    pub fn fully_patched(&self) -> bool {
        self.fat_mkpartfs
            && self.rsync_fat_flags
            && self.windows_fstab_removed
            && self.windows_umount_removed
    }

    /// Number of edits still missing (manual steps remaining).
    pub fn missing_edits(&self) -> u32 {
        u32::from(!self.fat_mkpartfs)
            + u32::from(!self.rsync_fat_flags)
            + u32::from(!self.windows_fstab_removed)
            + u32::from(!self.windows_umount_removed)
    }
}

impl MasterScript {
    /// Generate the script systemimager would emit for a layout —
    /// *unpatched*: every physical partition gets `mkpart`, every mounted
    /// filesystem gets a plain rsync, an fstab line and a cleanup umount
    /// (including, naively, the foreign Windows partition).
    pub fn generate(layout: &IdeDisk) -> MasterScript {
        let mut stmts = Vec::new();
        for line in &layout.lines {
            let Some(number) = line
                .device
                .strip_prefix("/dev/sda")
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            let fs = match line.fstype {
                FsType::Ext3 => "ext3",
                FsType::Swap => "linux-swap",
                FsType::Vfat => "fat32",
                FsType::Ntfs => "ntfs",
                FsType::Skip => "skip",
                FsType::Tmpfs | FsType::Nfs => continue,
            };
            if line.fstype != FsType::Skip {
                stmts.push(MasterStmt::MkPart {
                    number,
                    fs: fs.to_string(),
                });
            }
            if let Some(mp) = &line.mountpoint {
                stmts.push(MasterStmt::Rsync {
                    target: mp.clone(),
                    flags: vec!["-a".to_string()],
                });
                stmts.push(MasterStmt::FstabLine {
                    device: line.device.clone(),
                    mountpoint: mp.clone(),
                });
                stmts.push(MasterStmt::Umount {
                    mountpoint: mp.clone(),
                });
            } else if line.fstype == FsType::Ntfs {
                // The generator naively emits fstab/umount for the foreign
                // Windows partition too (what edit 4 removes).
                stmts.push(MasterStmt::FstabLine {
                    device: line.device.clone(),
                    mountpoint: "/windows".to_string(),
                });
                stmts.push(MasterStmt::Umount {
                    mountpoint: "/windows".to_string(),
                });
            }
        }
        MasterScript { stmts }
    }

    /// Edit 2: switch the FAT partition's `mkpart` to `mkpartfs`.
    /// Returns whether anything changed.
    pub fn patch_fat_mkpartfs(&mut self) -> bool {
        let mut changed = false;
        for s in &mut self.stmts {
            if let MasterStmt::MkPart { number, fs } = s {
                if fs == "fat32" {
                    *s = MasterStmt::MkPartFs {
                        number: *number,
                        fs: fs.clone(),
                    };
                    changed = true;
                }
            }
        }
        changed
    }

    /// Edit 3: add `--modify-window=1 --size-only` to rsyncs that touch
    /// FAT mount points (identified by `layout`).
    pub fn patch_rsync_fat_flags(&mut self, layout: &IdeDisk) -> bool {
        let fat_mounts: Vec<&str> = layout
            .lines
            .iter()
            .filter(|l| l.fstype == FsType::Vfat)
            .filter_map(|l| l.mountpoint.as_deref())
            .collect();
        let mut changed = false;
        for s in &mut self.stmts {
            if let MasterStmt::Rsync { target, flags } = s {
                if fat_mounts.contains(&target.as_str())
                    && !flags.iter().any(|f| f == "--modify-window=1")
                {
                    flags.push("--modify-window=1".to_string());
                    flags.push("--size-only".to_string());
                    changed = true;
                }
            }
        }
        changed
    }

    /// Edit 4: drop the Windows partition's fstab line and umount.
    pub fn patch_remove_windows_mounts(&mut self) -> bool {
        let before = self.stmts.len();
        self.stmts.retain(|s| {
            !matches!(
                s,
                MasterStmt::FstabLine { mountpoint, .. } | MasterStmt::Umount { mountpoint }
                    if mountpoint == "/windows"
            )
        });
        self.stmts.len() != before
    }

    /// Apply every v1 edit, returning how many changed something (the
    /// manual steps the administrator performed).
    pub fn apply_v1_patches(&mut self, layout: &IdeDisk) -> u32 {
        let mut steps = 0;
        if self.patch_fat_mkpartfs() {
            steps += 1;
        }
        if self.patch_rsync_fat_flags(layout) {
            steps += 1;
        }
        // fstab and umount removal are listed as one §III.C.1 point but
        // are two file locations; count them as the paper's single edit.
        if self.patch_remove_windows_mounts() {
            steps += 1;
        }
        steps
    }

    /// Check the patch state against a layout.
    pub fn patch_status(&self, layout: &IdeDisk) -> PatchStatus {
        let fat_mounts: Vec<&str> = layout
            .lines
            .iter()
            .filter(|l| l.fstype == FsType::Vfat)
            .filter_map(|l| l.mountpoint.as_deref())
            .collect();
        let has_fat = layout.lines.iter().any(|l| l.fstype == FsType::Vfat);
        let fat_mkpartfs = !has_fat
            || self.stmts.iter().any(
                |s| matches!(s, MasterStmt::MkPartFs { fs, .. } if fs == "fat32"),
            );
        let rsync_fat_flags = self.stmts.iter().all(|s| match s {
            MasterStmt::Rsync { target, flags } if fat_mounts.contains(&target.as_str()) => {
                flags.iter().any(|f| f == "--modify-window=1")
                    && flags.iter().any(|f| f == "--size-only")
            }
            _ => true,
        });
        let windows_fstab_removed = !self.stmts.iter().any(
            |s| matches!(s, MasterStmt::FstabLine { mountpoint, .. } if mountpoint == "/windows"),
        );
        let windows_umount_removed = !self.stmts.iter().any(
            |s| matches!(s, MasterStmt::Umount { mountpoint } if mountpoint == "/windows"),
        );
        PatchStatus {
            fat_mkpartfs,
            rsync_fat_flags,
            windows_fstab_removed,
            windows_umount_removed,
        }
    }

    /// Emit shell-like text (one statement per line).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for s in &self.stmts {
            match s {
                MasterStmt::MkPart { number, fs } => {
                    out.push_str(&format!("parted -s /dev/sda mkpart {number} {fs}\n"))
                }
                MasterStmt::MkPartFs { number, fs } => {
                    out.push_str(&format!("parted -s /dev/sda mkpartfs {number} {fs}\n"))
                }
                MasterStmt::Rsync { target, flags } => {
                    out.push_str("rsync ");
                    out.push_str(&flags.join(" "));
                    out.push_str(&format!(" image/ /a{target}\n"));
                }
                MasterStmt::FstabLine { device, mountpoint } => {
                    out.push_str(&format!("echo '{device} {mountpoint}' >> /a/etc/fstab\n"))
                }
                MasterStmt::Umount { mountpoint } => {
                    out.push_str(&format!("umount /a{mountpoint}\n"))
                }
            }
        }
        out
    }

    /// Parse emitted text back (round-trip support for stored scripts).
    pub fn parse(text: &str) -> Result<MasterScript, ParseError> {
        let mut stmts = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.first().copied() {
                Some("parted") => {
                    // parted -s /dev/sda mkpart(fs) <number> <fs>
                    let cmd = words.get(3).copied().unwrap_or("");
                    let number: u32 = words
                        .get(4)
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "bad parted number"))?;
                    let fs = words
                        .get(5)
                        .copied()
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "missing parted fs"))?
                        .to_string();
                    match cmd {
                        "mkpart" => stmts.push(MasterStmt::MkPart { number, fs }),
                        "mkpartfs" => stmts.push(MasterStmt::MkPartFs { number, fs }),
                        other => {
                            return Err(ParseError::at(
                                DIALECT,
                                lineno,
                                format!("unknown parted command {other:?}"),
                            ))
                        }
                    }
                }
                Some("rsync") => {
                    // rsync <flags...> image/ /a<target>
                    let target = words
                        .last()
                        .and_then(|w| w.strip_prefix("/a"))
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "bad rsync target"))?
                        .to_string();
                    let flags = words[1..words.len() - 2]
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    stmts.push(MasterStmt::Rsync { target, flags });
                }
                Some("echo") => {
                    // echo '<device> <mountpoint>' >> /a/etc/fstab
                    let device = words
                        .get(1)
                        .map(|w| w.trim_start_matches('\'').to_string())
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "bad fstab echo"))?;
                    let mountpoint = words
                        .get(2)
                        .map(|w| w.trim_end_matches('\'').to_string())
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "bad fstab echo"))?;
                    stmts.push(MasterStmt::FstabLine { device, mountpoint });
                }
                Some("umount") => {
                    let mountpoint = words
                        .get(1)
                        .and_then(|w| w.strip_prefix("/a"))
                        .ok_or_else(|| ParseError::at(DIALECT, lineno, "bad umount"))?
                        .to_string();
                    stmts.push(MasterStmt::Umount { mountpoint });
                }
                other => {
                    return Err(ParseError::at(
                        DIALECT,
                        lineno,
                        format!("unknown statement {other:?}"),
                    ))
                }
            }
        }
        Ok(MasterScript { stmts })
    }

    /// Does the script still reference a partition layout slot for the
    /// given number (any mkpart/mkpartfs)?
    pub fn creates_partition(&self, number: u32) -> bool {
        self.stmts.iter().any(|s| {
            matches!(s, MasterStmt::MkPart { number: n, .. } | MasterStmt::MkPartFs { number: n, .. } if *n == number)
        })
    }

    /// Layout sanity check: every fixed-size physical partition in the
    /// layout (other than `skip`) must be created by the script.
    pub fn covers_layout(&self, layout: &IdeDisk) -> bool {
        layout.lines.iter().all(|l| {
            let Some(number) = l
                .device
                .strip_prefix("/dev/sda")
                .and_then(|n| n.parse::<u32>().ok())
            else {
                return true;
            };
            match l.fstype {
                FsType::Skip | FsType::Tmpfs | FsType::Nfs => true,
                _ => {
                    matches!(l.size, SizeSpec::Mb(_) | SizeSpec::Fill)
                        && self.creates_partition(number)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_layout() -> IdeDisk {
        IdeDisk::eridani_v1()
    }

    #[test]
    fn generated_script_is_unpatched() {
        let script = MasterScript::generate(&v1_layout());
        let status = script.patch_status(&v1_layout());
        assert!(!status.fully_patched());
        assert_eq!(status.missing_edits(), 4);
        assert!(!status.fat_mkpartfs);
        assert!(!status.rsync_fat_flags);
        assert!(!status.windows_fstab_removed);
        assert!(!status.windows_umount_removed);
    }

    #[test]
    fn v1_patches_fix_everything() {
        let mut script = MasterScript::generate(&v1_layout());
        let steps = script.apply_v1_patches(&v1_layout());
        assert_eq!(steps, 3); // mkpartfs, rsync flags, windows mounts
        let status = script.patch_status(&v1_layout());
        assert!(status.fully_patched(), "{status:?}");
        assert_eq!(status.missing_edits(), 0);
    }

    #[test]
    fn patches_are_idempotent() {
        let mut script = MasterScript::generate(&v1_layout());
        script.apply_v1_patches(&v1_layout());
        let again = script.apply_v1_patches(&v1_layout());
        assert_eq!(again, 0, "second pass changes nothing");
    }

    #[test]
    fn mkpartfs_patch_targets_only_fat() {
        let mut script = MasterScript::generate(&v1_layout());
        script.patch_fat_mkpartfs();
        let fat_fs: Vec<&MasterStmt> = script
            .stmts
            .iter()
            .filter(|s| matches!(s, MasterStmt::MkPartFs { .. }))
            .collect();
        assert_eq!(fat_fs.len(), 1);
        // ext3 partitions keep plain mkpart
        assert!(script
            .stmts
            .iter()
            .any(|s| matches!(s, MasterStmt::MkPart { fs, .. } if fs == "ext3")));
    }

    #[test]
    fn rsync_flags_added_only_to_fat_mounts() {
        let mut script = MasterScript::generate(&v1_layout());
        script.patch_rsync_fat_flags(&v1_layout());
        for s in &script.stmts {
            if let MasterStmt::Rsync { target, flags } = s {
                let has = flags.iter().any(|f| f == "--modify-window=1");
                assert_eq!(has, target == "/boot/swap", "target {target}");
            }
        }
    }

    #[test]
    fn windows_mounts_removed() {
        let mut script = MasterScript::generate(&v1_layout());
        assert!(script.patch_remove_windows_mounts());
        assert!(!script
            .stmts
            .iter()
            .any(|s| matches!(s, MasterStmt::Umount { mountpoint } if mountpoint == "/windows")));
    }

    #[test]
    fn v2_layout_needs_no_patches() {
        // The v2 layout has no FAT partition and reserves Windows with
        // `skip` (no mkpart emitted, no fstab line): nothing to patch.
        let layout = IdeDisk::eridani_v2();
        let script = MasterScript::generate(&layout);
        let status = script.patch_status(&layout);
        assert!(status.fully_patched(), "{status:?}");
        assert!(!script.creates_partition(1), "skip slot untouched");
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut script = MasterScript::generate(&v1_layout());
        script.apply_v1_patches(&v1_layout());
        let text = script.emit();
        let back = MasterScript::parse(&text).unwrap();
        assert_eq!(back, script);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MasterScript::parse("frobnicate /dev/sda\n").is_err());
        assert!(MasterScript::parse("parted -s /dev/sda shrink 1 ext3\n").is_err());
        assert!(MasterScript::parse("parted -s /dev/sda mkpart x ext3\n").is_err());
    }

    #[test]
    fn covers_layout_checks() {
        let layout = v1_layout();
        let script = MasterScript::generate(&layout);
        assert!(script.covers_layout(&layout));
        let mut broken = script.clone();
        broken.stmts.retain(|s| !matches!(s, MasterStmt::MkPart { number: 2, .. }));
        assert!(!broken.covers_layout(&layout));
    }

    #[test]
    fn unpatched_fat_rsync_is_the_bug_the_paper_fixed() {
        // Without --modify-window, FAT's 2-second timestamp granularity
        // makes rsync re-copy everything. We encode the *detection*: the
        // patch_status flags the hazard.
        let script = MasterScript::generate(&v1_layout());
        assert!(!script.patch_status(&v1_layout()).rsync_fat_flags);
    }
}
