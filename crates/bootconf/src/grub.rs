//! GRUB legacy (`menu.lst`) configuration model.
//!
//! dualboot-oscar v1.0 controls which OS a node boots by pointing the
//! node-local GRUB at a `controlmenu.lst` stored on a shared FAT partition
//! (paper §III.B.1, Figures 2 and 3). Both operating systems can rewrite
//! that file, so whichever system is running can set the *next* boot target.
//!
//! This module models the subset of GRUB legacy the paper exercises —
//! header directives (`default`, `timeout`, `splashimage`, `hiddenmenu`),
//! title entries, and the boot commands `root`, `rootnoverify`, `kernel`,
//! `initrd`, `chainloader` and `configfile` — with enough fidelity that the
//! emitter reproduces Figures 2 and 3 byte-for-byte and the boot semantics
//! (which entry fires, what it chains to) can be executed by `dualboot-hw`.

use crate::error::ParseError;
use crate::os::OsKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

const DIALECT: &str = "menu.lst";

/// A GRUB device tuple `(hdD,P)`: BIOS disk `D`, 0-based partition `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GrubDevice {
    /// BIOS disk number (`hd0` is the first disk).
    pub disk: u8,
    /// 0-based partition index. GRUB legacy counts primary partitions 0–3
    /// and logical partitions from 4, so the paper's `(hd0,5)` is the
    /// second logical partition.
    pub partition: u8,
}

impl GrubDevice {
    /// Shorthand constructor.
    pub const fn new(disk: u8, partition: u8) -> Self {
        GrubDevice { disk, partition }
    }
}

impl fmt::Display for GrubDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(hd{},{})", self.disk, self.partition)
    }
}

impl FromStr for GrubDevice {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let inner = s
            .strip_prefix("(hd")
            .and_then(|r| r.strip_suffix(')'))
            .ok_or_else(|| ParseError::general(DIALECT, format!("bad device {s:?}")))?;
        let (d, p) = inner
            .split_once(',')
            .ok_or_else(|| ParseError::general(DIALECT, format!("bad device {s:?}")))?;
        let disk = d
            .parse()
            .map_err(|_| ParseError::general(DIALECT, format!("bad disk in {s:?}")))?;
        let partition = p
            .parse()
            .map_err(|_| ParseError::general(DIALECT, format!("bad partition in {s:?}")))?;
        Ok(GrubDevice { disk, partition })
    }
}

/// Whether `default` was written `default=0` (Figure 2) or `default 0`
/// (Figure 3). GRUB legacy accepts both; we preserve the style so golden
/// tests can pin each figure exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignStyle {
    /// `default=0`
    Equals,
    /// `default 0`
    Space,
}

/// A directive appearing before the first `title`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeaderDirective {
    /// `default=N` / `default N` — index of the entry booted on timeout.
    Default {
        /// 0-based entry index.
        index: u32,
        /// `=` or space assignment (preserved for byte fidelity).
        style: AssignStyle,
    },
    /// `timeout=N` — seconds before the default entry boots.
    Timeout(u32),
    /// `splashimage=(hdD,P)/path` — menu background (cosmetic; carried for
    /// byte fidelity).
    Splashimage {
        /// Device holding the image.
        device: GrubDevice,
        /// Path on that device.
        path: String,
    },
    /// `hiddenmenu` — suppress the menu unless a key is pressed.
    HiddenMenu,
    /// `fallback=N` — entry to try if the default fails.
    Fallback(u32),
}

/// A command inside a `title` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryCommand {
    /// `root (hdD,P)` — set and mount the root device.
    Root(GrubDevice),
    /// `rootnoverify (hdD,P)` — set root without mounting (used for the
    /// Windows NTFS partition GRUB cannot read).
    RootNoVerify(GrubDevice),
    /// `kernel /path args...` — load a Linux kernel.
    Kernel {
        /// Kernel image path (relative to the entry's root device).
        path: String,
        /// Kernel command line, word by word.
        args: Vec<String>,
    },
    /// `initrd /path` — load an initial ramdisk.
    Initrd(String),
    /// `chainloader +1` (or a path) — hand off to another boot sector,
    /// which is how GRUB boots Windows.
    Chainloader(String),
    /// `configfile /path` — replace the current menu with another config
    /// file; the heart of the v1 FAT-partition redirection (Figure 2).
    ConfigFile(String),
    /// `makeactive` — mark the root partition active.
    MakeActive,
}

/// What booting an entry ultimately does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootTarget {
    /// Loads a Linux kernel (has a `kernel` command).
    Os(OsKind),
    /// Jumps to another config file at this path (has `configfile`).
    Redirect(String),
    /// No recognisable boot command — GRUB would drop to a prompt.
    Undefined,
}

/// A `title` entry with its command list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrubEntry {
    /// The title line text (may contain spaces).
    pub title: String,
    /// Commands in file order.
    pub commands: Vec<EntryCommand>,
}

impl GrubEntry {
    /// Classify what this entry boots. `chainloader`/`rootnoverify` entries
    /// count as Windows (that is the only chainloaded OS in this system),
    /// `kernel` entries as Linux, `configfile` as a redirect.
    pub fn boot_target(&self) -> BootTarget {
        for c in &self.commands {
            match c {
                EntryCommand::Kernel { .. } => return BootTarget::Os(OsKind::Linux),
                EntryCommand::Chainloader(_) => return BootTarget::Os(OsKind::Windows),
                EntryCommand::ConfigFile(p) => return BootTarget::Redirect(p.clone()),
                _ => {}
            }
        }
        BootTarget::Undefined
    }
}

/// A complete GRUB legacy configuration file.
///
/// ```
/// use dualboot_bootconf::grub::{eridani, BootTarget, GrubConfig};
/// use dualboot_bootconf::os::OsKind;
///
/// // Figure 3's controlmenu.lst, retargeted the way a switch job does:
/// let mut menu = eridani::controlmenu(OsKind::Linux);
/// assert!(menu.retarget(OsKind::Windows));
/// assert_eq!(
///     menu.default_entry().unwrap().boot_target(),
///     BootTarget::Os(OsKind::Windows)
/// );
/// // and the text round-trips
/// let reparsed = GrubConfig::parse(&menu.emit()).unwrap();
/// assert_eq!(reparsed, menu);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrubConfig {
    /// Directives before the first `title`.
    pub header: Vec<HeaderDirective>,
    /// Title entries in file order.
    pub entries: Vec<GrubEntry>,
}

impl GrubConfig {
    /// Parse a `menu.lst`-style file. Comments (`#`) and blank lines are
    /// skipped; unknown directives are errors (the middleware must never
    /// write a config GRUB would choke on).
    pub fn parse(text: &str) -> Result<GrubConfig, ParseError> {
        let mut header = Vec::new();
        let mut entries: Vec<GrubEntry> = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(title) = line.strip_prefix("title") {
                let title = title.trim();
                if title.is_empty() {
                    return Err(ParseError::at(DIALECT, lineno, "empty title"));
                }
                entries.push(GrubEntry {
                    title: title.to_string(),
                    commands: Vec::new(),
                });
                continue;
            }
            if entries.is_empty() {
                header.push(Self::parse_header(line, lineno)?);
            } else {
                let cmd = Self::parse_command(line, lineno)?;
                entries.last_mut().expect("non-empty").commands.push(cmd);
            }
        }
        Ok(GrubConfig { header, entries })
    }

    fn parse_header(line: &str, lineno: usize) -> Result<HeaderDirective, ParseError> {
        // `key=value`, `key value`, or bare `key`.
        let (key, val, style) = match line.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim()), AssignStyle::Equals),
            None => match line.split_once(char::is_whitespace) {
                Some((k, v)) => (k.trim(), Some(v.trim()), AssignStyle::Space),
                None => (line, None, AssignStyle::Space),
            },
        };
        let num = |v: Option<&str>| -> Result<u32, ParseError> {
            v.and_then(|v| v.parse().ok())
                .ok_or_else(|| ParseError::at(DIALECT, lineno, format!("bad number in {line:?}")))
        };
        match key {
            "default" => Ok(HeaderDirective::Default {
                index: num(val)?,
                style,
            }),
            "timeout" => Ok(HeaderDirective::Timeout(num(val)?)),
            "fallback" => Ok(HeaderDirective::Fallback(num(val)?)),
            "hiddenmenu" => Ok(HeaderDirective::HiddenMenu),
            "splashimage" => {
                let v = val.ok_or_else(|| {
                    ParseError::at(DIALECT, lineno, "splashimage needs a value")
                })?;
                // (hd0,1)/grub/splash.xpm.gz
                let close = v.find(')').ok_or_else(|| {
                    ParseError::at(DIALECT, lineno, format!("bad splashimage {v:?}"))
                })?;
                let device: GrubDevice = v[..=close]
                    .parse()
                    .map_err(|e: ParseError| ParseError::at(DIALECT, lineno, e.message))?;
                Ok(HeaderDirective::Splashimage {
                    device,
                    path: v[close + 1..].to_string(),
                })
            }
            _ => Err(ParseError::at(
                DIALECT,
                lineno,
                format!("unknown header directive {key:?}"),
            )),
        }
    }

    fn parse_command(line: &str, lineno: usize) -> Result<EntryCommand, ParseError> {
        let mut words = line.split_whitespace();
        let key = words.next().expect("non-empty line");
        let rest: Vec<&str> = words.collect();
        let one_arg = |name: &str| -> Result<String, ParseError> {
            if rest.len() == 1 {
                Ok(rest[0].to_string())
            } else {
                Err(ParseError::at(
                    DIALECT,
                    lineno,
                    format!("{name} takes exactly one argument"),
                ))
            }
        };
        match key {
            "root" => Ok(EntryCommand::Root(one_arg("root")?.parse().map_err(
                |e: ParseError| ParseError::at(DIALECT, lineno, e.message),
            )?)),
            "rootnoverify" => Ok(EntryCommand::RootNoVerify(
                one_arg("rootnoverify")?
                    .parse()
                    .map_err(|e: ParseError| ParseError::at(DIALECT, lineno, e.message))?,
            )),
            "kernel" => {
                if rest.is_empty() {
                    return Err(ParseError::at(DIALECT, lineno, "kernel needs a path"));
                }
                Ok(EntryCommand::Kernel {
                    path: rest[0].to_string(),
                    args: rest[1..].iter().map(|s| s.to_string()).collect(),
                })
            }
            "initrd" => Ok(EntryCommand::Initrd(one_arg("initrd")?)),
            "chainloader" => Ok(EntryCommand::Chainloader(one_arg("chainloader")?)),
            "configfile" => Ok(EntryCommand::ConfigFile(one_arg("configfile")?)),
            "makeactive" => Ok(EntryCommand::MakeActive),
            _ => Err(ParseError::at(
                DIALECT,
                lineno,
                format!("unknown entry command {key:?}"),
            )),
        }
    }

    /// Emit the canonical text form: header directives, then each entry
    /// preceded by a blank line, trailing newline at the end. Reproduces
    /// Figures 2 and 3 byte-for-byte.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for h in &self.header {
            match h {
                HeaderDirective::Default { index, style } => match style {
                    AssignStyle::Equals => out.push_str(&format!("default={index}\n")),
                    AssignStyle::Space => out.push_str(&format!("default {index}\n")),
                },
                HeaderDirective::Timeout(t) => out.push_str(&format!("timeout={t}\n")),
                HeaderDirective::Fallback(n) => out.push_str(&format!("fallback={n}\n")),
                HeaderDirective::HiddenMenu => out.push_str("hiddenmenu\n"),
                HeaderDirective::Splashimage { device, path } => {
                    out.push_str(&format!("splashimage={device}{path}\n"))
                }
            }
        }
        for e in &self.entries {
            out.push('\n');
            out.push_str(&format!("title {}\n", e.title));
            for c in &e.commands {
                match c {
                    EntryCommand::Root(d) => out.push_str(&format!("root {d}\n")),
                    EntryCommand::RootNoVerify(d) => {
                        out.push_str(&format!("rootnoverify {d}\n"))
                    }
                    EntryCommand::Kernel { path, args } => {
                        out.push_str("kernel ");
                        out.push_str(path);
                        for a in args {
                            out.push(' ');
                            out.push_str(a);
                        }
                        out.push('\n');
                    }
                    EntryCommand::Initrd(p) => out.push_str(&format!("initrd {p}\n")),
                    EntryCommand::Chainloader(p) => {
                        out.push_str(&format!("chainloader {p}\n"))
                    }
                    EntryCommand::ConfigFile(p) => out.push_str(&format!("configfile {p}\n")),
                    EntryCommand::MakeActive => out.push_str("makeactive\n"),
                }
            }
        }
        out
    }

    /// Index of the default entry (0 when no `default` directive is given,
    /// matching GRUB's behaviour).
    pub fn default_index(&self) -> u32 {
        self.header
            .iter()
            .find_map(|h| match h {
                HeaderDirective::Default { index, .. } => Some(*index),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// The entry GRUB boots on timeout, if any.
    pub fn default_entry(&self) -> Option<&GrubEntry> {
        self.entries.get(self.default_index() as usize)
    }

    /// Set (or insert) the `default` directive. Style is preserved if the
    /// directive already exists, else `Space` is used (Figure 3's style).
    pub fn set_default(&mut self, index: u32) {
        for h in &mut self.header {
            if let HeaderDirective::Default { index: i, .. } = h {
                *i = index;
                return;
            }
        }
        self.header.insert(
            0,
            HeaderDirective::Default {
                index,
                style: AssignStyle::Space,
            },
        );
    }

    /// Index of the first entry that boots `os`, if any.
    pub fn entry_index_for(&self, os: OsKind) -> Option<u32> {
        self.entries
            .iter()
            .position(|e| e.boot_target() == BootTarget::Os(os))
            .map(|i| i as u32)
    }

    /// Retarget the config at `os` by pointing `default` at the first entry
    /// booting that OS. Returns `false` (config unchanged) when no entry
    /// boots `os`.
    pub fn retarget(&mut self, os: OsKind) -> bool {
        match self.entry_index_for(os) {
            Some(i) => {
                self.set_default(i);
                true
            }
            None => false,
        }
    }
}

/// Builders reproducing the exact configurations of the paper's Eridani
/// deployment.
pub mod eridani {
    use super::*;

    /// The node-local `/boot/grub/menu.lst` of Figure 2: a single entry that
    /// redirects to `controlmenu.lst` on the shared FAT partition `(hd0,5)`.
    pub fn menu_lst() -> GrubConfig {
        GrubConfig {
            header: vec![
                HeaderDirective::Default {
                    index: 0,
                    style: AssignStyle::Equals,
                },
                HeaderDirective::Timeout(5),
                HeaderDirective::Splashimage {
                    device: GrubDevice::new(0, 1),
                    path: "/grub/splash.xpm.gz".to_string(),
                },
                HeaderDirective::HiddenMenu,
            ],
            entries: vec![GrubEntry {
                title: "changing to control file".to_string(),
                commands: vec![
                    EntryCommand::Root(GrubDevice::new(0, 5)),
                    EntryCommand::ConfigFile("/controlmenu.lst".to_string()),
                ],
            }],
        }
    }

    /// The FAT-partition `controlmenu.lst` of Figure 3, with `default`
    /// pointing at the entry for `target`: entry 0 boots CentOS 5.4 + OSCAR,
    /// entry 1 chainloads Windows Server 2008 R2.
    pub fn controlmenu(target: OsKind) -> GrubConfig {
        let mut cfg = GrubConfig {
            header: vec![
                HeaderDirective::Default {
                    index: 0,
                    style: AssignStyle::Space,
                },
                HeaderDirective::Timeout(10),
                HeaderDirective::Splashimage {
                    device: GrubDevice::new(0, 1),
                    path: "/grub/splash.xpm.gz".to_string(),
                },
            ],
            entries: vec![
                GrubEntry {
                    title: "CentOS-5.4_Oscar-5b2-linux".to_string(),
                    commands: vec![
                        EntryCommand::Root(GrubDevice::new(0, 1)),
                        EntryCommand::Kernel {
                            path: "/vmlinuz-2.6.18-164.el5".to_string(),
                            args: vec![
                                "ro".to_string(),
                                "root=/dev/sda7".to_string(),
                                "enforcing=0".to_string(),
                            ],
                        },
                        EntryCommand::Initrd("/sc-initrd-2.6.18-164.el5.gz".to_string()),
                    ],
                },
                GrubEntry {
                    title: "Win_Server_2K8_R2-windows".to_string(),
                    commands: vec![
                        EntryCommand::RootNoVerify(GrubDevice::new(0, 0)),
                        EntryCommand::Chainloader("+1".to_string()),
                    ],
                },
            ],
        };
        cfg.retarget(target);
        cfg
    }

    /// The pre-staged `controlmenu_to_linux.lst` / `controlmenu_to_windows.lst`
    /// pair (§III.B.1): the batch scripts switch OS by renaming one of these
    /// over `controlmenu.lst` instead of editing in place.
    pub fn prestaged_pair() -> (GrubConfig, GrubConfig) {
        (controlmenu(OsKind::Linux), controlmenu(OsKind::Windows))
    }

    /// The v2-layout boot menu: identical to Figure 3 except the kernel's
    /// root device, which is `/dev/sda6` under the Figure-14 `ide.disk`
    /// (the v1 layout behind Figure 3 kept `/` on sda7). Served by the
    /// GRUB4DOS PXE directory and installed as the v2 nodes' local
    /// fallback menu.
    pub fn controlmenu_v2(target: OsKind) -> GrubConfig {
        let mut cfg = controlmenu(target);
        for e in &mut cfg.entries {
            for c in &mut e.commands {
                if let EntryCommand::Kernel { args, .. } = c {
                    for a in args {
                        if a.starts_with("root=/dev/sda") {
                            *a = "root=/dev/sda6".to_string();
                        }
                    }
                }
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2 of the paper, verbatim.
    pub const FIG2_MENU_LST: &str = "default=0\n\
timeout=5\n\
splashimage=(hd0,1)/grub/splash.xpm.gz\n\
hiddenmenu\n\
\n\
title changing to control file\n\
root (hd0,5)\n\
configfile /controlmenu.lst\n";

    /// Figure 3 of the paper, verbatim.
    pub const FIG3_CONTROLMENU: &str = "default 0\n\
timeout=10\n\
splashimage=(hd0,1)/grub/splash.xpm.gz\n\
\n\
title CentOS-5.4_Oscar-5b2-linux\n\
root (hd0,1)\n\
kernel /vmlinuz-2.6.18-164.el5 ro root=/dev/sda7 enforcing=0\n\
initrd /sc-initrd-2.6.18-164.el5.gz\n\
\n\
title Win_Server_2K8_R2-windows\n\
rootnoverify (hd0,0)\n\
chainloader +1\n";

    #[test]
    fn fig2_menu_lst_emits_verbatim() {
        assert_eq!(eridani::menu_lst().emit(), FIG2_MENU_LST);
    }

    #[test]
    fn fig3_controlmenu_emits_verbatim() {
        assert_eq!(eridani::controlmenu(OsKind::Linux).emit(), FIG3_CONTROLMENU);
    }

    #[test]
    fn fig2_roundtrips() {
        let cfg = GrubConfig::parse(FIG2_MENU_LST).unwrap();
        assert_eq!(cfg.emit(), FIG2_MENU_LST);
        assert_eq!(cfg.entries.len(), 1);
        assert_eq!(
            cfg.default_entry().unwrap().boot_target(),
            BootTarget::Redirect("/controlmenu.lst".to_string())
        );
    }

    #[test]
    fn fig3_roundtrips() {
        let cfg = GrubConfig::parse(FIG3_CONTROLMENU).unwrap();
        assert_eq!(cfg.emit(), FIG3_CONTROLMENU);
        assert_eq!(cfg.entries.len(), 2);
        assert_eq!(
            cfg.entries[0].boot_target(),
            BootTarget::Os(OsKind::Linux)
        );
        assert_eq!(
            cfg.entries[1].boot_target(),
            BootTarget::Os(OsKind::Windows)
        );
    }

    #[test]
    fn retarget_flips_default() {
        let mut cfg = eridani::controlmenu(OsKind::Linux);
        assert_eq!(cfg.default_index(), 0);
        assert!(cfg.retarget(OsKind::Windows));
        assert_eq!(cfg.default_index(), 1);
        assert_eq!(
            cfg.default_entry().unwrap().boot_target(),
            BootTarget::Os(OsKind::Windows)
        );
        // style preserved: still "default N" per Figure 3
        assert!(cfg.emit().starts_with("default 1\n"));
    }

    #[test]
    fn retarget_missing_os_is_noop() {
        let mut cfg = eridani::menu_lst(); // only a redirect entry
        let before = cfg.clone();
        assert!(!cfg.retarget(OsKind::Windows));
        assert_eq!(cfg, before);
    }

    #[test]
    fn prestaged_pair_targets_differ() {
        let (lin, win) = eridani::prestaged_pair();
        assert_eq!(lin.default_index(), 0);
        assert_eq!(win.default_index(), 1);
    }

    #[test]
    fn set_default_inserts_when_missing() {
        let mut cfg = GrubConfig {
            header: vec![],
            entries: vec![],
        };
        cfg.set_default(1);
        assert_eq!(cfg.default_index(), 1);
    }

    #[test]
    fn default_missing_means_zero() {
        let cfg = GrubConfig::parse("timeout=5\n\ntitle a\nroot (hd0,0)\n").unwrap();
        assert_eq!(cfg.default_index(), 0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# boot config\ndefault=0\n\n# entry\ntitle x\nkernel /vmlinuz ro\n";
        let cfg = GrubConfig::parse(text).unwrap();
        assert_eq!(cfg.entries.len(), 1);
        assert_eq!(cfg.entries[0].boot_target(), BootTarget::Os(OsKind::Linux));
    }

    #[test]
    fn unknown_directive_is_error_with_line() {
        let err = GrubConfig::parse("default=0\nbogus=1\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_command_is_error() {
        let err = GrubConfig::parse("title x\nfrobnicate /dev/sda\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn device_parse_and_display() {
        let d: GrubDevice = "(hd0,5)".parse().unwrap();
        assert_eq!(d, GrubDevice::new(0, 5));
        assert_eq!(d.to_string(), "(hd0,5)");
        assert!("(sd0,1)".parse::<GrubDevice>().is_err());
        assert!("(hd0)".parse::<GrubDevice>().is_err());
        assert!("(hd0,x)".parse::<GrubDevice>().is_err());
    }

    #[test]
    fn undefined_target_when_no_boot_command() {
        let e = GrubEntry {
            title: "broken".to_string(),
            commands: vec![EntryCommand::Root(GrubDevice::new(0, 0))],
        };
        assert_eq!(e.boot_target(), BootTarget::Undefined);
    }

    #[test]
    fn out_of_range_default_has_no_entry() {
        let mut cfg = eridani::controlmenu(OsKind::Linux);
        cfg.set_default(9);
        assert!(cfg.default_entry().is_none());
    }
}
