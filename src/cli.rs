//! Argument parsing and command execution for the `dualboot` CLI.
//!
//! Hand-rolled (the workspace's dependency policy has no CLI crates) but
//! fully testable: [`Command::parse`](crate::cli::Command::parse) is pure, and each command returns
//! its output as a `String` so the binary only prints.

use crate::campaign::{CampaignSpec, RunOptions as CampaignRunOptions};
use crate::cluster::report::{
    chaos_section, cost_section, health_section, result_row, sched_section, Table, RESULT_HEADERS,
};
use crate::cluster::{
    FaultPlan, Mode, NodeBackendKind, PolicyKind, SchedPolicy, SimConfig, Simulation,
};
use crate::grid::{report as grid_report, GridSim, GridSpec, RoutePolicy};
use crate::serve::{CampaignJob, Collected, JobSpec, ReconnectPolicy, Response, SimJob};
use crate::workload::generator::WorkloadSpec;
use crate::workload::swf::{self, OsMapping, SwfImportOptions};
use dualboot_des::time::{SimDuration, SimTime};
use dualboot_des::QueueBackend;
use dualboot_hw::NodeId;
use dualboot_net::transport::TcpTransport;
use dualboot_obs::{self as obs, ObsConfig, Subsystem, TraceFilter, TraceRecord};
use std::net::{SocketAddr, ToSocketAddrs};

/// Schema tag stamped on every JSON document the CLI emits.
pub const JSON_SCHEMA: &str = "dualboot/v1";

/// Wrap a serialised result in the CLI's versioned JSON envelope:
/// `{"schema": "dualboot/v1", "kind": <kind>, "result": <result>}`.
/// `extra` fields (pre-serialised `"key":value` pairs) are appended after
/// the result.
fn envelope(kind: &str, result_json: &str, extra: &[(&str, String)]) -> String {
    let mut out = format!("{{\"schema\":\"{JSON_SCHEMA}\",\"kind\":\"{kind}\",\"result\":{result_json}");
    for (k, v) in extra {
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push_str("}\n");
    out
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the figure artefacts.
    Artifacts,
    /// Run one simulation and print the result row.
    Simulate(SimulateArgs),
    /// Run a campus-grid federation (policy sweep by default).
    Grid(GridArgs),
    /// Run, resume or re-report a sweep campaign.
    Campaign(CampaignArgs),
    /// Import an SWF trace and run it.
    Swf(SwfArgs),
    /// Inspect exported JSONL traces (filter/timeline/diff).
    Trace(TraceAction),
    /// Run the long-lived job server.
    Serve(ServeArgs),
    /// Submit a job to a running server and stream it.
    Submit(SubmitArgs),
    /// (Re)attach to a run on a running server.
    Attach(AttachArgs),
    /// List a running server's runs.
    Runs(RunsArgs),
    /// Cancel a run (or gracefully stop the whole server).
    CancelRun(CancelArgs),
    /// Print usage.
    Help,
}

/// Options for `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen address (`host:port`; port 0 picks an ephemeral port, the
    /// bound address is printed as `serving on ADDR`).
    pub listen: String,
    /// Directory for the run journal, traces and reports.
    pub state_dir: String,
    /// Executor threads; 0 means one per available core.
    pub workers: usize,
    /// Admission limit: queued + running jobs beyond this are rejected
    /// with retry advice.
    pub max_queue: usize,
    /// Process heap budget in MiB; submissions are rejected while live
    /// bytes exceed it (0 disables the check).
    pub mem_budget_mb: u64,
    /// Wall-clock deadline per run, in seconds.
    pub deadline_secs: Option<u64>,
    /// Seconds of client silence before a session is dropped (its runs
    /// keep executing).
    pub heartbeat_secs: u64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            listen: "127.0.0.1:0".to_string(),
            state_dir: "dualboot-serve".to_string(),
            workers: 0,
            max_queue: 4,
            mem_budget_mb: 0,
            deadline_secs: None,
            heartbeat_secs: 30,
        }
    }
}

/// Options for `submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Server address.
    pub connect: String,
    /// Free-form label attached to the run.
    pub tag: Option<String>,
    /// Write the collected JSONL trace here once the run completes.
    pub trace_out: Option<String>,
    /// Print `run N` and exit right after admission instead of
    /// streaming.
    pub detach: bool,
    /// The job to run.
    pub job: JobSpec,
}

/// Options for `attach`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachArgs {
    /// Server address.
    pub connect: String,
    /// Run id to attach to.
    pub run: u64,
    /// Write the collected JSONL trace here once the run completes.
    pub trace_out: Option<String>,
}

/// Options for `runs`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunsArgs {
    /// Server address.
    pub connect: String,
}

/// What `cancel` should stop.
#[derive(Debug, Clone, PartialEq)]
pub enum CancelTarget {
    /// One run by id.
    Run(u64),
    /// The whole server (graceful shutdown).
    Server,
}

/// Options for `cancel`.
#[derive(Debug, Clone, PartialEq)]
pub struct CancelArgs {
    /// Server address.
    pub connect: String,
    /// Run id or the whole server.
    pub target: CancelTarget,
}

/// What `dualboot trace` should do.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAction {
    /// Print the matching records (JSONL, or enveloped JSON with
    /// `--json`).
    Filter {
        /// Trace file to read.
        file: String,
        /// Record criteria.
        filter: TraceFilterArgs,
        /// Emit the enveloped JSON document instead of raw JSONL.
        json: bool,
    },
    /// Render the matching records as an aligned human timeline.
    Timeline {
        /// Trace file to read.
        file: String,
        /// Record criteria.
        filter: TraceFilterArgs,
    },
    /// Structurally diff two traces; identical traces exit 0, diverging
    /// ones exit non-zero.
    Diff {
        /// Left trace file.
        left: String,
        /// Right trace file.
        right: String,
        /// Mismatches to show before truncating (0: unlimited).
        limit: usize,
    },
}

/// Parsed record criteria for `trace filter` / `trace timeline`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFilterArgs {
    /// Subsystem name (`sim`, `linux-daemon`, …).
    pub subsystem: Option<String>,
    /// 1-based node number.
    pub node: Option<u32>,
    /// Event kind (`boot-ordered`, `msg-dropped`, …).
    pub kind: Option<String>,
    /// Keep records at or after this many seconds of sim time.
    pub from_s: Option<u64>,
    /// Keep records at or before this many seconds of sim time.
    pub until_s: Option<u64>,
}

impl TraceFilterArgs {
    /// Resolve into an [`TraceFilter`], validating the subsystem name.
    pub fn build(&self) -> Result<TraceFilter, CliError> {
        let subsystem = match &self.subsystem {
            None => None,
            Some(s) => Some(
                Subsystem::ALL
                    .into_iter()
                    .find(|x| x.name() == s)
                    .ok_or_else(|| CliError(format!("unknown subsystem {s:?}")))?,
            ),
        };
        Ok(TraceFilter {
            subsystem,
            node: self.node.map(NodeId),
            kind: self.kind.clone(),
            from: self.from_s.map(SimTime::from_secs),
            until: self.until_s.map(SimTime::from_secs),
        })
    }
}

/// Options for `simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// RNG seed.
    pub seed: u64,
    /// Evaluation mode.
    pub mode: Mode,
    /// Switch policy.
    pub policy: PolicyKind,
    /// Omniscient decider (for policies the wire can't feed).
    pub omniscient: bool,
    /// Queue scheduling policy (`--policy easy` turns on EASY backfill).
    pub sched: SchedPolicy,
    /// Windows share of the synthetic workload.
    pub windows_fraction: f64,
    /// Offered load relative to the 64-core cluster.
    pub load: f64,
    /// Trace duration in hours.
    pub hours: u64,
    /// Nodes starting on Linux (static split uses this as the partition).
    pub split: u32,
    /// Print the time series.
    pub series: bool,
    /// Fault plan: inline JSON (`{...}`), the word `chaos` for the
    /// default campaign, or a path to a JSON plan file.
    pub faults: Option<String>,
    /// Emit the full [`SimResult`](crate::cluster::SimResult) as JSON
    /// instead of the plain-text report.
    pub json: bool,
    /// Boot watchdog (retry + quarantine) on the simulated daemons.
    pub watchdog: bool,
    /// Crash-recovery journal on the simulated daemons.
    pub journal: bool,
    /// Record the run on the observability bus and write the JSONL trace
    /// to this path.
    pub trace_out: Option<String>,
    /// Wall-clock profile of the DES hot loop, reported per phase.
    pub profile: bool,
    /// Event-queue backend for the DES core (bit-identical results; the
    /// calendar queue wins at large node counts).
    pub queue: QueueBackend,
    /// Node backend; `None` derives it from the mode (bare metal), so
    /// every pre-backend invocation behaves exactly as before.
    pub backend: Option<NodeBackendKind>,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            seed: 2012,
            mode: Mode::DualBoot,
            policy: PolicyKind::Fcfs,
            omniscient: false,
            sched: SchedPolicy::Fcfs,
            windows_fraction: 0.3,
            load: 0.7,
            hours: 8,
            split: 16,
            series: false,
            faults: None,
            json: false,
            watchdog: true,
            journal: true,
            trace_out: None,
            profile: false,
            queue: QueueBackend::Heap,
            backend: None,
        }
    }
}

/// Options for `grid`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridArgs {
    /// Grid-level RNG seed.
    pub seed: u64,
    /// Number of member clusters in the campus.
    pub clusters: usize,
    /// Broker policy to run; `None` sweeps the whole spectrum.
    pub routing: Option<RoutePolicy>,
    /// Windows share of the unified workload stream.
    pub windows_fraction: f64,
    /// Offered load relative to the federation's total cores.
    pub load: f64,
    /// Trace duration in hours.
    pub hours: u64,
    /// Gossip cadence in seconds.
    pub report_secs: u64,
    /// Fault plan (same forms as `simulate --faults`), applied grid-wide:
    /// member chaos plus lossy gossip wires.
    pub faults: Option<String>,
    /// Emit [`GridResult`](crate::grid::GridResult) JSON (an array when
    /// sweeping) instead of the plain-text report.
    pub json: bool,
    /// Record the federation on the observability bus and write the JSONL
    /// trace to this path (requires a single `--routing` policy).
    pub trace_out: Option<String>,
    /// Node backend applied to every member cluster; `None` keeps the
    /// members on bare-metal dual-boot.
    pub backend: Option<NodeBackendKind>,
    /// Queue scheduling policy applied to every member cluster
    /// (`--policy easy` turns on EASY backfill grid-wide).
    pub sched: SchedPolicy,
}

impl Default for GridArgs {
    fn default() -> Self {
        GridArgs {
            seed: 2012,
            clusters: 3,
            routing: None,
            windows_fraction: 0.4,
            load: 0.55,
            hours: 24,
            report_secs: 120,
            faults: None,
            json: false,
            trace_out: None,
            backend: None,
            sched: SchedPolicy::Fcfs,
        }
    }
}

/// What `dualboot campaign` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignAction {
    /// Start the campaign from scratch.
    Run,
    /// Resume an interrupted campaign from its journal, running only the
    /// cells the journal is missing.
    Resume,
    /// Re-render the report from a journal without running anything.
    Report,
}

/// Options for `campaign`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArgs {
    /// Run, resume, or report.
    pub action: CampaignAction,
    /// Path to a JSON [`CampaignSpec`] manifest (mutually exclusive
    /// with `builtin`).
    pub manifest: Option<String>,
    /// Name of a built-in manifest
    /// (`smoke` | `fleet` | `grid-smoke` | `e17-backends`).
    pub builtin: Option<String>,
    /// Campaign seed for built-in manifests (file manifests carry their
    /// own).
    pub seed: u64,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Write-ahead progress journal path (required for resume/report).
    pub journal: Option<String>,
    /// Stop after this many pending cells (interruption testing).
    pub max_cells: Option<usize>,
    /// Also write the enveloped JSON report to this file.
    pub out: Option<String>,
    /// Print the enveloped JSON report instead of the human tables.
    pub json: bool,
    /// Pin the backends axis to this one backend (cluster targets only);
    /// `None` keeps the manifest's own axis.
    pub backend: Option<NodeBackendKind>,
    /// Pin a policy axis: `easy` pins the scheds axis, a switch-policy
    /// spelling pins the policies axis, `fcfs` pins both. `None` keeps
    /// the manifest's own axes.
    pub policy: Option<String>,
}

impl Default for CampaignArgs {
    fn default() -> Self {
        CampaignArgs {
            action: CampaignAction::Run,
            manifest: None,
            builtin: None,
            seed: 2012,
            workers: 0,
            journal: None,
            max_cells: None,
            out: None,
            json: false,
            backend: None,
            policy: None,
        }
    }
}

/// Options for `swf`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfArgs {
    /// Path to the SWF file.
    pub path: String,
    /// OS mapping.
    pub os: OsMapping,
    /// Simulation settings reused from `simulate`.
    pub sim: SimulateArgs,
}

/// Parse errors with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
dualboot — the dualboot-oscar reproduction CLI

USAGE:
  dualboot artifacts
  dualboot simulate [--seed N] [--mode dualboot|static|mono|oracle]
                    [--backend dual-boot|static-split|vm|elastic]
                    [--policy fcfs|easy|threshold|hysteresis|proportional]
                    [--win-frac F] [--load F] [--hours N] [--split N]
                    [--series] [--faults PLAN] [--json]
                    [--watchdog on|off] [--journal on|off]
                    [--trace-out FILE] [--profile] [--queue heap|calendar]
                    PLAN is inline JSON ('{...}'), the word 'chaos' for
                    the default campaign, or a path to a JSON plan file;
                    watchdog/journal toggle the node-health supervision
                    (both on by default); --trace-out records the run on
                    the observability bus and writes the JSONL trace;
                    --profile reports hot-loop wall-clock time per phase;
                    --queue selects the DES event-queue backend (the two
                    are bit-identical; calendar wins at large clusters);
                    --backend picks how OS capacity is hosted: bare-metal
                    dual-boot reboots (default), a frozen static split,
                    VM-hosted nodes (teardown+provision replaces reboots,
                    plus a hypervisor runtime tax), or an elastic VM pool
                    that grows and shrinks with queue depth. Contradictory
                    --mode/--backend pairs are rejected up front;
                    --policy easy turns on EASY backfill: queued jobs with
                    a walltime that fits before the blocked head's
                    reservation start early (jobs without walltimes never
                    backfill, so easy == fcfs on walltime-less workloads)
  dualboot grid     [--clusters N] [--seed N] [--routing static|queue|coop|sweep]
                    [--win-frac F] [--load F] [--hours N] [--report-secs N]
                    [--faults PLAN] [--json] [--trace-out FILE] [--backend B]
                    [--policy fcfs|easy]
                    federates N hybrid clusters under one broker; the
                    default sweeps every routing policy and compares them;
                    --backend applies one node backend to every member;
                    --policy applies one queue-scheduling policy to every
                    member
  dualboot campaign run|resume|report
                    (MANIFEST.json |
                     --builtin smoke|fleet|grid-smoke|e17-backends|e18-backfill)
                    [--seed N] [--workers N] [--journal FILE]
                    [--max-cells N] [--out FILE] [--json] [--backend B]
                    [--policy P]
                    sweeps a manifest's full (mode x policy x sched x
                    routing x faults x queue x backend x wall x seed)
                    grid across all cores; --backend pins the backends
                    axis to one backend; --policy easy pins the scheds
                    axis, a switch-policy spelling pins the policies
                    axis, fcfs pins both; with
                    --journal every finished cell is appended to a
                    write-ahead journal, `resume` re-runs only the cells
                    the journal is missing, and `report` re-renders the
                    journal without running anything. --out also writes
                    the enveloped JSON report to FILE. Reports are
                    byte-identical for a manifest regardless of worker
                    count or interruptions.
  dualboot serve    [--listen ADDR] [--state-dir DIR] [--workers N]
                    [--max-queue N] [--mem-budget-mb N] [--deadline-secs N]
                    [--heartbeat-secs N]
                    long-running job server; prints `serving on ADDR` once
                    ready. Every accepted run is journaled to the state
                    dir, so a killed server re-queues unfinished runs on
                    restart and converges on byte-identical reports.
                    Admission is bounded (--max-queue, --mem-budget-mb):
                    excess submissions are rejected with retry advice, not
                    queued without limit. Stop gracefully with a `quit`
                    line on stdin or `dualboot cancel --server`.
  dualboot submit   --connect ADDR [--tag T] [--trace-out FILE] [--detach]
                    (sim flags: --seed --mode --backend --policy --win-frac
                     --load --hours --split --watchdog --journal --queue
                     --faults
                     | --campaign-builtin NAME [--campaign-seed N]
                       [--campaign-workers N])
                    submits one job, prints `run N`, then streams the
                    trace to the final report, reconnecting with
                    exponential backoff when the link tears; --detach
                    returns right after admission
  dualboot attach   RUN --connect ADDR [--trace-out FILE]
                    (re)attach to a run: the server replays the journaled
                    trace from the first frame this client has not seen,
                    then streams live — a crashed viewer loses nothing
  dualboot runs     --connect ADDR
                    list the server's runs and their states
  dualboot cancel   (RUN | --server) --connect ADDR
                    cancel one run cooperatively, or shut the server down
                    (running jobs are interrupted, journaled, and resumed
                    by the next `dualboot serve` on the same state dir)
  dualboot swf <file.swf> [--windows-queue N | --win-frac F] [simulate opts]
  dualboot trace filter   <trace.jsonl> [--subsystem S] [--node N] [--kind K]
                          [--from-s N] [--until-s N] [--json]
  dualboot trace timeline <trace.jsonl> [same filter flags]
  dualboot trace diff     <a.jsonl> <b.jsonl> [--limit N]
                          exits 0 when the traces are identical, 1 when
                          they diverge (the determinism gate)
  dualboot help

JSON output (--json) is always wrapped in the versioned envelope
  {\"schema\": \"dualboot/v1\", \"kind\": ..., \"result\": ...}
";

/// Shared flag-value parsing for every entry point that takes the
/// mode/policy/backend/queue enums (`simulate`, `grid`, `campaign`,
/// `submit`, the serve job surface and the scale bench), so one set of
/// spellings works everywhere. The canonical names live on the enums
/// themselves — campaign manifests deserialize the very same enums — and
/// this module only adds the CLI error envelope.
pub mod values {
    use super::CliError;
    use crate::cluster::{Mode, NodeBackendKind, PolicyChoice};
    use dualboot_des::QueueBackend;

    /// Parse a `--mode` value (`dualboot|static|mono|oracle`).
    pub fn mode(s: &str) -> Result<Mode, CliError> {
        Mode::parse(s)
            .ok_or_else(|| CliError(format!("unknown mode {s:?} (dualboot|static|mono|oracle)")))
    }

    /// Parse a `--policy` value. One flag covers both policy axes:
    /// `easy` selects EASY backfill on the queue-scheduling axis, the
    /// switch-policy spellings select the OS-switch axis, and `fcfs` is
    /// the default of both.
    pub fn policy(s: &str) -> Result<PolicyChoice, CliError> {
        crate::cluster::parse_policy_arg(s).ok_or_else(|| {
            CliError(format!(
                "unknown policy {s:?} (fcfs|easy|threshold|hysteresis|proportional)"
            ))
        })
    }

    /// Parse a `--backend` value (`dual-boot|static-split|vm|elastic`).
    pub fn backend(s: &str) -> Result<NodeBackendKind, CliError> {
        NodeBackendKind::parse(s).ok_or_else(|| {
            CliError(format!(
                "unknown backend {s:?} (dual-boot|static-split|vm|elastic)"
            ))
        })
    }

    /// Parse a `--queue` value (`heap|calendar`).
    pub fn queue(s: &str) -> Result<QueueBackend, CliError> {
        s.parse::<QueueBackend>().map_err(|e| CliError(e.to_string()))
    }
}

impl Command {
    /// Parse an argv (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, CliError> {
        let mut it = args.iter();
        match it.next().map(String::as_str) {
            None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
            Some("artifacts") => Ok(Command::Artifacts),
            Some("simulate") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Simulate(parse_simulate(&rest)?))
            }
            Some("grid") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Grid(parse_grid(&rest)?))
            }
            Some("campaign") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Campaign(parse_campaign(&rest)?))
            }
            Some("swf") => {
                let path = it
                    .next()
                    .ok_or_else(|| CliError("swf needs a file path".to_string()))?
                    .clone();
                let rest: Vec<String> = it.cloned().collect();
                let mut windows_queue: Option<i64> = None;
                let mut filtered = Vec::new();
                let mut k = 0;
                while k < rest.len() {
                    if rest[k] == "--windows-queue" {
                        let v = rest.get(k + 1).ok_or_else(|| {
                            CliError("--windows-queue needs a value".to_string())
                        })?;
                        windows_queue = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad queue number {v:?}")))?,
                        );
                        k += 2;
                    } else {
                        filtered.push(rest[k].clone());
                        k += 1;
                    }
                }
                let sim = parse_simulate(&filtered)?;
                let os = match windows_queue {
                    Some(q) => OsMapping::ByQueue { windows_queue: q },
                    None => OsMapping::Fraction {
                        windows_fraction: sim.windows_fraction,
                        seed: sim.seed,
                    },
                };
                Ok(Command::Swf(SwfArgs { path, os, sim }))
            }
            Some("trace") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Trace(parse_trace(&rest)?))
            }
            Some("serve") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Serve(parse_serve(&rest)?))
            }
            Some("submit") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Submit(parse_submit(&rest)?))
            }
            Some("attach") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Attach(parse_attach(&rest)?))
            }
            Some("runs") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::Runs(parse_runs(&rest)?))
            }
            Some("cancel") => {
                let rest: Vec<String> = it.cloned().collect();
                Ok(Command::CancelRun(parse_cancel(&rest)?))
            }
            Some(other) => Err(CliError(format!(
                "unknown command {other:?} (try `dualboot help`)"
            ))),
        }
    }
}

fn parse_on_off(flag: &str, v: &str) -> Result<bool, CliError> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(CliError(format!("{flag} takes on|off, not {other:?}"))),
    }
}

fn parse_simulate(args: &[String]) -> Result<SimulateArgs, CliError> {
    let mut out = SimulateArgs::default();
    let mut k = 0;
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    while k < args.len() {
        match args[k].as_str() {
            "--seed" => {
                let v = value(args, k, "--seed")?;
                out.seed = v.parse().map_err(|_| CliError(format!("bad seed {v:?}")))?;
                k += 2;
            }
            "--mode" => {
                out.mode = values::mode(&value(args, k, "--mode")?)?;
                k += 2;
            }
            "--backend" => {
                out.backend = Some(values::backend(&value(args, k, "--backend")?)?);
                k += 2;
            }
            "--policy" => {
                let c = values::policy(&value(args, k, "--policy")?)?;
                out.policy = c.kind;
                out.omniscient = c.omniscient;
                out.sched = c.sched;
                k += 2;
            }
            "--win-frac" => {
                let v = value(args, k, "--win-frac")?;
                out.windows_fraction = v
                    .parse()
                    .map_err(|_| CliError(format!("bad fraction {v:?}")))?;
                if !(0.0..=1.0).contains(&out.windows_fraction) {
                    return Err(CliError("--win-frac must be in [0,1]".to_string()));
                }
                k += 2;
            }
            "--load" => {
                let v = value(args, k, "--load")?;
                out.load = v.parse().map_err(|_| CliError(format!("bad load {v:?}")))?;
                k += 2;
            }
            "--hours" => {
                let v = value(args, k, "--hours")?;
                out.hours = v.parse().map_err(|_| CliError(format!("bad hours {v:?}")))?;
                k += 2;
            }
            "--split" => {
                let v = value(args, k, "--split")?;
                out.split = v.parse().map_err(|_| CliError(format!("bad split {v:?}")))?;
                k += 2;
            }
            "--series" => {
                out.series = true;
                k += 1;
            }
            "--faults" => {
                out.faults = Some(value(args, k, "--faults")?);
                k += 2;
            }
            "--json" => {
                out.json = true;
                k += 1;
            }
            "--watchdog" => {
                out.watchdog = parse_on_off("--watchdog", &value(args, k, "--watchdog")?)?;
                k += 2;
            }
            "--journal" => {
                out.journal = parse_on_off("--journal", &value(args, k, "--journal")?)?;
                k += 2;
            }
            "--trace-out" => {
                out.trace_out = Some(value(args, k, "--trace-out")?);
                k += 2;
            }
            "--profile" => {
                out.profile = true;
                k += 1;
            }
            "--queue" => {
                out.queue = values::queue(&value(args, k, "--queue")?)?;
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_grid(args: &[String]) -> Result<GridArgs, CliError> {
    let mut out = GridArgs::default();
    let mut k = 0;
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    while k < args.len() {
        match args[k].as_str() {
            "--seed" => {
                let v = value(args, k, "--seed")?;
                out.seed = v.parse().map_err(|_| CliError(format!("bad seed {v:?}")))?;
                k += 2;
            }
            "--clusters" => {
                let v = value(args, k, "--clusters")?;
                out.clusters = v
                    .parse()
                    .map_err(|_| CliError(format!("bad cluster count {v:?}")))?;
                if out.clusters == 0 {
                    return Err(CliError("--clusters must be at least 1".to_string()));
                }
                k += 2;
            }
            "--routing" => {
                let v = value(args, k, "--routing")?;
                out.routing = match v.as_str() {
                    "sweep" => None,
                    other => Some(RoutePolicy::parse(other).ok_or_else(|| {
                        CliError(format!(
                            "unknown routing {other:?} (static|queue|coop|sweep)"
                        ))
                    })?),
                };
                k += 2;
            }
            "--win-frac" => {
                let v = value(args, k, "--win-frac")?;
                out.windows_fraction = v
                    .parse()
                    .map_err(|_| CliError(format!("bad fraction {v:?}")))?;
                if !(0.0..=1.0).contains(&out.windows_fraction) {
                    return Err(CliError("--win-frac must be in [0,1]".to_string()));
                }
                k += 2;
            }
            "--load" => {
                let v = value(args, k, "--load")?;
                out.load = v.parse().map_err(|_| CliError(format!("bad load {v:?}")))?;
                k += 2;
            }
            "--hours" => {
                let v = value(args, k, "--hours")?;
                out.hours = v.parse().map_err(|_| CliError(format!("bad hours {v:?}")))?;
                k += 2;
            }
            "--report-secs" => {
                let v = value(args, k, "--report-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad cadence {v:?}")))?;
                if secs == 0 {
                    return Err(CliError("--report-secs must be at least 1".to_string()));
                }
                out.report_secs = secs;
                k += 2;
            }
            "--faults" => {
                out.faults = Some(value(args, k, "--faults")?);
                k += 2;
            }
            "--json" => {
                out.json = true;
                k += 1;
            }
            "--trace-out" => {
                out.trace_out = Some(value(args, k, "--trace-out")?);
                k += 2;
            }
            "--backend" => {
                out.backend = Some(values::backend(&value(args, k, "--backend")?)?);
                k += 2;
            }
            "--policy" => {
                let v = value(args, k, "--policy")?;
                let c = values::policy(&v)?;
                // The members keep their own switch policies; only the
                // queue-scheduling axis applies grid-wide.
                if c.kind != PolicyKind::Fcfs || c.omniscient {
                    return Err(CliError(format!(
                        "grid --policy takes fcfs|easy, not {v:?} (switch policies \
                         are per-member)"
                    )));
                }
                out.sched = c.sched;
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    if out.trace_out.is_some() && out.routing.is_none() {
        return Err(CliError(
            "--trace-out needs a single --routing policy (not a sweep)".to_string(),
        ));
    }
    Ok(out)
}

fn parse_campaign(args: &[String]) -> Result<CampaignArgs, CliError> {
    let mut out = CampaignArgs::default();
    out.action = match args.first().map(String::as_str) {
        Some("run") => CampaignAction::Run,
        Some("resume") => CampaignAction::Resume,
        Some("report") => CampaignAction::Report,
        other => {
            return Err(CliError(format!(
                "campaign needs an action run|resume|report, got {other:?}"
            )))
        }
    };
    let rest = &args[1..];
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut k = 0;
    while k < rest.len() {
        match rest[k].as_str() {
            "--builtin" => {
                out.builtin = Some(value(rest, k, "--builtin")?);
                k += 2;
            }
            "--seed" => {
                let v = value(rest, k, "--seed")?;
                out.seed = v.parse().map_err(|_| CliError(format!("bad seed {v:?}")))?;
                k += 2;
            }
            "--workers" => {
                let v = value(rest, k, "--workers")?;
                out.workers = v
                    .parse()
                    .map_err(|_| CliError(format!("bad worker count {v:?}")))?;
                k += 2;
            }
            "--journal" => {
                out.journal = Some(value(rest, k, "--journal")?);
                k += 2;
            }
            "--max-cells" => {
                let v = value(rest, k, "--max-cells")?;
                out.max_cells = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad cell count {v:?}")))?,
                );
                k += 2;
            }
            "--out" => {
                out.out = Some(value(rest, k, "--out")?);
                k += 2;
            }
            "--json" => {
                out.json = true;
                k += 1;
            }
            "--backend" => {
                out.backend = Some(values::backend(&value(rest, k, "--backend")?)?);
                k += 2;
            }
            "--policy" => {
                let v = value(rest, k, "--policy")?;
                values::policy(&v)?; // validate the spelling up front
                out.policy = Some(v);
                k += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown flag {flag:?}")))
            }
            path => {
                if out.manifest.is_some() {
                    return Err(CliError(format!(
                        "campaign takes one manifest path, got a second: {path:?}"
                    )));
                }
                out.manifest = Some(path.to_string());
                k += 1;
            }
        }
    }
    if out.manifest.is_some() == out.builtin.is_some() {
        return Err(CliError(
            "campaign needs a manifest file or --builtin NAME (exactly one)".to_string(),
        ));
    }
    if matches!(out.action, CampaignAction::Resume | CampaignAction::Report)
        && out.journal.is_none()
    {
        return Err(CliError(
            "campaign resume/report needs --journal FILE".to_string(),
        ));
    }
    Ok(out)
}

/// Parse the `trace` subcommand's argv.
fn parse_trace(args: &[String]) -> Result<TraceAction, CliError> {
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let parse_filter_flags =
        |rest: &[String]| -> Result<(TraceFilterArgs, bool), CliError> {
            let mut f = TraceFilterArgs::default();
            let mut json = false;
            let mut k = 0;
            while k < rest.len() {
                match rest[k].as_str() {
                    "--subsystem" => {
                        f.subsystem = Some(value(rest, k, "--subsystem")?);
                        k += 2;
                    }
                    "--node" => {
                        let v = value(rest, k, "--node")?;
                        f.node = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad node {v:?}")))?,
                        );
                        k += 2;
                    }
                    "--kind" => {
                        f.kind = Some(value(rest, k, "--kind")?);
                        k += 2;
                    }
                    "--from-s" => {
                        let v = value(rest, k, "--from-s")?;
                        f.from_s = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad seconds {v:?}")))?,
                        );
                        k += 2;
                    }
                    "--until-s" => {
                        let v = value(rest, k, "--until-s")?;
                        f.until_s = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad seconds {v:?}")))?,
                        );
                        k += 2;
                    }
                    "--json" => {
                        json = true;
                        k += 1;
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok((f, json))
        };
    match args.first().map(String::as_str) {
        Some("filter") => {
            let file = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("trace filter needs a trace file".to_string()))?
                .clone();
            let (filter, json) = parse_filter_flags(&args[2..])?;
            Ok(TraceAction::Filter { file, filter, json })
        }
        Some("timeline") => {
            let file = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("trace timeline needs a trace file".to_string()))?
                .clone();
            let (filter, json) = parse_filter_flags(&args[2..])?;
            if json {
                return Err(CliError(
                    "trace timeline is human output; use trace filter --json".to_string(),
                ));
            }
            Ok(TraceAction::Timeline { file, filter })
        }
        Some("diff") => {
            let left = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("trace diff needs two trace files".to_string()))?
                .clone();
            let right = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("trace diff needs two trace files".to_string()))?
                .clone();
            let mut limit = 10usize;
            let rest = &args[3..];
            let mut k = 0;
            while k < rest.len() {
                match rest[k].as_str() {
                    "--limit" => {
                        let v = value(rest, k, "--limit")?;
                        limit = v
                            .parse()
                            .map_err(|_| CliError(format!("bad limit {v:?}")))?;
                        k += 2;
                    }
                    other => return Err(CliError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(TraceAction::Diff { left, right, limit })
        }
        Some(other) => Err(CliError(format!(
            "unknown trace action {other:?} (filter|timeline|diff)"
        ))),
        None => Err(CliError(
            "trace needs an action (filter|timeline|diff)".to_string(),
        )),
    }
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--listen" => {
                out.listen = value(args, k, "--listen")?;
                k += 2;
            }
            "--state-dir" => {
                out.state_dir = value(args, k, "--state-dir")?;
                k += 2;
            }
            "--workers" => {
                let v = value(args, k, "--workers")?;
                out.workers = v
                    .parse()
                    .map_err(|_| CliError(format!("bad worker count {v:?}")))?;
                k += 2;
            }
            "--max-queue" => {
                let v = value(args, k, "--max-queue")?;
                out.max_queue = v
                    .parse()
                    .map_err(|_| CliError(format!("bad queue limit {v:?}")))?;
                if out.max_queue == 0 {
                    return Err(CliError("--max-queue must be at least 1".to_string()));
                }
                k += 2;
            }
            "--mem-budget-mb" => {
                let v = value(args, k, "--mem-budget-mb")?;
                out.mem_budget_mb = v
                    .parse()
                    .map_err(|_| CliError(format!("bad budget {v:?}")))?;
                k += 2;
            }
            "--deadline-secs" => {
                let v = value(args, k, "--deadline-secs")?;
                out.deadline_secs = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad deadline {v:?}")))?,
                );
                k += 2;
            }
            "--heartbeat-secs" => {
                let v = value(args, k, "--heartbeat-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad heartbeat {v:?}")))?;
                if secs == 0 {
                    return Err(CliError("--heartbeat-secs must be at least 1".to_string()));
                }
                out.heartbeat_secs = secs;
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_submit(args: &[String]) -> Result<SubmitArgs, CliError> {
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut connect: Option<String> = None;
    let mut tag: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut detach = false;
    let mut sim = SimJob::default();
    let mut sim_flag_seen = false;
    let mut campaign_builtin: Option<String> = None;
    let mut campaign_seed: u64 = 2012;
    let mut campaign_workers: u64 = 0;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--connect" => {
                connect = Some(value(args, k, "--connect")?);
                k += 2;
            }
            "--tag" => {
                tag = Some(value(args, k, "--tag")?);
                k += 2;
            }
            "--trace-out" => {
                trace_out = Some(value(args, k, "--trace-out")?);
                k += 2;
            }
            "--detach" => {
                detach = true;
                k += 1;
            }
            "--campaign-builtin" => {
                campaign_builtin = Some(value(args, k, "--campaign-builtin")?);
                k += 2;
            }
            "--campaign-seed" => {
                let v = value(args, k, "--campaign-seed")?;
                campaign_seed = v.parse().map_err(|_| CliError(format!("bad seed {v:?}")))?;
                k += 2;
            }
            "--campaign-workers" => {
                let v = value(args, k, "--campaign-workers")?;
                campaign_workers = v
                    .parse()
                    .map_err(|_| CliError(format!("bad worker count {v:?}")))?;
                k += 2;
            }
            "--seed" => {
                let v = value(args, k, "--seed")?;
                sim.seed = v.parse().map_err(|_| CliError(format!("bad seed {v:?}")))?;
                sim_flag_seen = true;
                k += 2;
            }
            "--mode" => {
                let v = value(args, k, "--mode")?;
                values::mode(&v)?; // validate client-side, ship the string
                sim.mode = v;
                sim_flag_seen = true;
                k += 2;
            }
            "--backend" => {
                let v = value(args, k, "--backend")?;
                values::backend(&v)?;
                sim.backend = Some(v);
                sim_flag_seen = true;
                k += 2;
            }
            "--policy" => {
                let v = value(args, k, "--policy")?;
                values::policy(&v)?;
                sim.policy = v;
                sim_flag_seen = true;
                k += 2;
            }
            "--win-frac" => {
                let v = value(args, k, "--win-frac")?;
                sim.windows_fraction = v
                    .parse()
                    .map_err(|_| CliError(format!("bad fraction {v:?}")))?;
                if !(0.0..=1.0).contains(&sim.windows_fraction) {
                    return Err(CliError("--win-frac must be in [0,1]".to_string()));
                }
                sim_flag_seen = true;
                k += 2;
            }
            "--load" => {
                let v = value(args, k, "--load")?;
                sim.load = v.parse().map_err(|_| CliError(format!("bad load {v:?}")))?;
                sim_flag_seen = true;
                k += 2;
            }
            "--hours" => {
                let v = value(args, k, "--hours")?;
                sim.hours = v.parse().map_err(|_| CliError(format!("bad hours {v:?}")))?;
                sim_flag_seen = true;
                k += 2;
            }
            "--split" => {
                let v = value(args, k, "--split")?;
                sim.split = v.parse().map_err(|_| CliError(format!("bad split {v:?}")))?;
                sim_flag_seen = true;
                k += 2;
            }
            "--watchdog" => {
                sim.watchdog = parse_on_off("--watchdog", &value(args, k, "--watchdog")?)?;
                sim_flag_seen = true;
                k += 2;
            }
            "--journal" => {
                sim.journal = parse_on_off("--journal", &value(args, k, "--journal")?)?;
                sim_flag_seen = true;
                k += 2;
            }
            "--queue" => {
                let v = value(args, k, "--queue")?;
                values::queue(&v)?;
                sim.queue = v;
                sim_flag_seen = true;
                k += 2;
            }
            "--faults" => {
                // The server only accepts `chaos` or inline JSON (it
                // never reads client-side paths), so a plan file is
                // inlined here.
                let v = value(args, k, "--faults")?;
                sim.faults = Some(if v == "chaos" || v.trim_start().starts_with('{') {
                    v
                } else {
                    std::fs::read_to_string(&v)
                        .map_err(|e| CliError(format!("cannot read fault plan {v:?}: {e}")))?
                });
                sim_flag_seen = true;
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    let connect =
        connect.ok_or_else(|| CliError("submit needs --connect ADDR".to_string()))?;
    let job = match campaign_builtin {
        Some(builtin) => {
            if sim_flag_seen {
                return Err(CliError(
                    "--campaign-builtin cannot be mixed with simulate flags".to_string(),
                ));
            }
            JobSpec::Campaign(CampaignJob {
                builtin,
                seed: campaign_seed,
                workers: campaign_workers,
            })
        }
        None => JobSpec::Sim(sim),
    };
    Ok(SubmitArgs { connect, tag, trace_out, detach, job })
}

fn parse_attach(args: &[String]) -> Result<AttachArgs, CliError> {
    let run = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError("attach needs a run id".to_string()))?;
    let run: u64 = run
        .parse()
        .map_err(|_| CliError(format!("bad run id {run:?}")))?;
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut connect: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let rest = &args[1..];
    let mut k = 0;
    while k < rest.len() {
        match rest[k].as_str() {
            "--connect" => {
                connect = Some(value(rest, k, "--connect")?);
                k += 2;
            }
            "--trace-out" => {
                trace_out = Some(value(rest, k, "--trace-out")?);
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    let connect =
        connect.ok_or_else(|| CliError("attach needs --connect ADDR".to_string()))?;
    Ok(AttachArgs { connect, run, trace_out })
}

fn parse_runs(args: &[String]) -> Result<RunsArgs, CliError> {
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut connect: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--connect" => {
                connect = Some(value(args, k, "--connect")?);
                k += 2;
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
    }
    let connect = connect.ok_or_else(|| CliError("runs needs --connect ADDR".to_string()))?;
    Ok(RunsArgs { connect })
}

fn parse_cancel(args: &[String]) -> Result<CancelArgs, CliError> {
    let value = |args: &[String], k: usize, flag: &str| -> Result<String, CliError> {
        args.get(k + 1)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} needs a value")))
    };
    let mut connect: Option<String> = None;
    let mut server = false;
    let mut run: Option<u64> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--connect" => {
                connect = Some(value(args, k, "--connect")?);
                k += 2;
            }
            "--server" => {
                server = true;
                k += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown flag {flag:?}")))
            }
            id => {
                if run.is_some() {
                    return Err(CliError("cancel takes one run id".to_string()));
                }
                run = Some(
                    id.parse()
                        .map_err(|_| CliError(format!("bad run id {id:?}")))?,
                );
                k += 1;
            }
        }
    }
    let connect =
        connect.ok_or_else(|| CliError("cancel needs --connect ADDR".to_string()))?;
    let target = match (run, server) {
        (Some(id), false) => CancelTarget::Run(id),
        (None, true) => CancelTarget::Server,
        _ => {
            return Err(CliError(
                "cancel takes a run id or --server (exactly one)".to_string(),
            ))
        }
    };
    Ok(CancelArgs { connect, target })
}

/// Resolve a `--faults` value into a plan: inline JSON if it starts with
/// `{`, the default chaos campaign for the literal `chaos`, otherwise a
/// path to a JSON plan file.
pub fn resolve_fault_plan(spec: &str, seed: u64) -> Result<FaultPlan, CliError> {
    if spec.trim_start().starts_with('{') {
        return FaultPlan::from_json(spec)
            .map_err(|e| CliError(format!("bad fault plan JSON: {e}")));
    }
    if spec == "chaos" {
        return Ok(FaultPlan::default_chaos(seed));
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| CliError(format!("cannot read fault plan {spec:?}: {e}")))?;
    FaultPlan::from_json(&text)
        .map_err(|e| CliError(format!("bad fault plan in {spec:?}: {e}")))
}

/// Execute a simulate command, returning the printable report.
pub fn run_simulate(args: &SimulateArgs) -> Result<String, CliError> {
    let trace = WorkloadSpec {
        windows_fraction: args.windows_fraction,
        duration: SimDuration::from_hours(args.hours),
        ..WorkloadSpec::campus_default(args.seed)
    }
    .with_offered_load(args.load, 64)
    .generate();
    run_trace(args, trace)
}

/// Execute an SWF command, returning the printable report.
pub fn run_swf(args: &SwfArgs, swf_text: &str) -> Result<String, CliError> {
    let trace = swf::import(
        swf_text,
        &SwfImportOptions {
            os: args.os,
            ..SwfImportOptions::default()
        },
    )
    .map_err(|e| CliError(format!("SWF import failed: {e}")))?;
    Ok(format!(
        "imported {} jobs from SWF\n{}",
        trace.len(),
        run_trace(&args.sim, trace)?
    ))
}

fn run_trace(
    args: &SimulateArgs,
    trace: Vec<crate::workload::generator::SubmitEvent>,
) -> Result<String, CliError> {
    let mut builder = SimConfig::builder()
        .v2()
        .seed(args.seed)
        .mode(args.mode)
        .policy(args.policy)
        .sched(args.sched);
    if let Some(kind) = args.backend {
        builder = builder.backend(kind.to_backend());
    }
    // A contradictory --mode/--backend pair surfaces here as a typed
    // config error rather than a panic.
    let mut cfg = builder.try_build().map_err(|e| CliError(e.to_string()))?;
    cfg.omniscient = args.omniscient;
    cfg.initial_linux_nodes = args.split;
    cfg.record_series = args.series;
    cfg.supervision.watchdog = args.watchdog;
    cfg.supervision.journal = args.journal;
    cfg.queue_backend = args.queue;
    cfg.horizon = SimDuration::from_hours(24 * 30);
    if let Some(spec) = &args.faults {
        cfg.faults = resolve_fault_plan(spec, args.seed)?;
    }
    if args.trace_out.is_some() {
        cfg.obs = ObsConfig::recording();
    }
    let sim = Simulation::new(cfg, trace);
    // The sink is Arc-shared: a clone taken before `run` (which consumes
    // the simulation) still reads the finished trace.
    let sink = sim.obs().clone();
    let (r, profile) = if args.profile {
        let (r, p) = sim.run_profiled();
        (r, Some(p))
    } else {
        (sim.run(), None)
    };
    if let Some(path) = &args.trace_out {
        let text = obs::to_jsonl(&sink.snapshot());
        std::fs::write(path, text)
            .map_err(|e| CliError(format!("cannot write trace {path:?}: {e}")))?;
    }
    if args.json {
        let inner = serde_json::to_string(&r)
            .map_err(|e| CliError(format!("cannot serialise result: {e}")))?;
        let extra: Vec<(&str, String)> = match &profile {
            Some(p) => vec![("profile", p.to_json())],
            None => Vec::new(),
        };
        return Ok(envelope("simulate", &inner, &extra));
    }
    let mut table = Table::new("simulation result", &RESULT_HEADERS);
    table.row(&result_row("run", &r));
    let mut out = table.render();
    let chaos = chaos_section(&r);
    if !chaos.is_empty() {
        out.push('\n');
        out.push_str(&chaos);
    }
    let health = health_section(&r);
    if !health.is_empty() {
        out.push('\n');
        out.push_str(&health);
    }
    let sched = sched_section(&r);
    if !sched.is_empty() {
        out.push('\n');
        out.push_str(&sched);
    }
    out.push('\n');
    out.push_str(&cost_section(&r));
    if args.series {
        let mut st = Table::new("series", &["t", "linux", "windows", "booting", "q(L)", "q(W)"]);
        for p in &r.series {
            st.row(&[
                format!("{}", p.at),
                format!("{}", p.linux_nodes),
                format!("{}", p.windows_nodes),
                format!("{}", p.booting_nodes),
                format!("{}", p.linux_queued),
                format!("{}", p.windows_queued),
            ]);
        }
        out.push('\n');
        out.push_str(&st.render());
    }
    if let Some(p) = &profile {
        out.push('\n');
        out.push_str(&p.render());
    }
    Ok(out)
}

/// Build the [`GridSpec`] a `grid` invocation describes, for one routing
/// policy.
fn grid_spec(args: &GridArgs, routing: RoutePolicy) -> Result<GridSpec, CliError> {
    let mut spec = GridSpec::campus(args.seed, args.clusters);
    spec.routing = routing;
    if let Some(kind) = args.backend {
        for m in &mut spec.members {
            let backend = kind.to_backend();
            if !backend.compatible_with(m.cfg.mode) {
                return Err(CliError(format!(
                    "backend {} cannot run member {:?} (mode {})",
                    kind.name(),
                    m.name,
                    m.cfg.mode.name(),
                )));
            }
            m.cfg.backend = backend;
        }
    }
    for m in &mut spec.members {
        m.cfg.sched = args.sched;
    }
    spec.report_every = SimDuration::from_secs(args.report_secs);
    spec.workload = WorkloadSpec {
        windows_fraction: args.windows_fraction,
        duration: SimDuration::from_hours(args.hours),
        ..WorkloadSpec::campus_default(args.seed)
    }
    .with_offered_load(args.load, spec.total_cores().max(1));
    if let Some(fspec) = &args.faults {
        if fspec == "chaos" {
            spec.apply_chaos();
        } else {
            spec.apply_fault_plan(&resolve_fault_plan(fspec, args.seed)?);
        }
    }
    Ok(spec)
}

/// Execute a grid command, returning the printable report (or JSON).
pub fn run_grid(args: &GridArgs) -> Result<String, CliError> {
    let policies: Vec<RoutePolicy> = match args.routing {
        Some(p) => vec![p],
        None => RoutePolicy::ALL.to_vec(),
    };
    let results: Vec<crate::grid::GridResult> = policies
        .iter()
        .map(|&p| {
            let mut spec = grid_spec(args, p)?;
            if args.trace_out.is_some() {
                spec.obs = ObsConfig::recording();
            }
            let g = GridSim::new(spec);
            let sink = g.obs().clone();
            let r = g.run();
            if let Some(path) = &args.trace_out {
                let text = obs::to_jsonl(&sink.snapshot());
                std::fs::write(path, text)
                    .map_err(|e| CliError(format!("cannot write trace {path:?}: {e}")))?;
            }
            Ok(r)
        })
        .collect::<Result<_, CliError>>()?;

    if args.json {
        let inner = if results.len() == 1 {
            results[0].to_json()
        } else {
            serde_json::to_string(&results)
                .map_err(|e| CliError(format!("cannot serialise results: {e}")))?
        };
        return Ok(envelope("grid", &inner, &[]));
    }

    let mut out = String::new();
    if results.len() > 1 {
        let mut sweep = Table::new(
            format!(
                "grid policy sweep ({} clusters, seed {})",
                args.clusters, args.seed
            ),
            &grid_report::SWEEP_HEADERS,
        );
        for r in &results {
            sweep.row(&grid_report::sweep_row(r));
        }
        out.push_str(&sweep.render());
        out.push('\n');
    }
    for r in &results {
        out.push_str(&grid_report::render(r));
        for m in &r.members {
            let chaos = chaos_section(&m.result);
            if !chaos.is_empty() {
                out.push_str(&format!("-- member {} --\n{chaos}", m.name));
            }
        }
        out.push('\n');
    }
    out.pop();
    Ok(out)
}

/// Execute a `campaign` command, returning the printable report.
///
/// Timings go to stderr only — the report body must stay byte-identical
/// across worker counts and resumes, which wall-clock would break.
pub fn run_campaign(args: &CampaignArgs) -> Result<String, CliError> {
    let mut spec = match (&args.builtin, &args.manifest) {
        (Some(name), None) => CampaignSpec::builtin(name, args.seed).ok_or_else(|| {
            CliError(format!(
                "unknown builtin campaign {name:?} \
                 (smoke|fleet|grid-smoke|e17-backends|e18-backfill)"
            ))
        })?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read manifest {path:?}: {e}")))?;
            serde_json::from_str(&text)
                .map_err(|e| CliError(format!("bad manifest {path:?}: {e}")))?
        }
        _ => {
            return Err(CliError(
                "campaign needs a manifest file or --builtin NAME (exactly one)".to_string(),
            ))
        }
    };
    if let Some(kind) = args.backend {
        // Pinning the axis changes the fingerprint, so a pinned run gets
        // its own journal lineage — it cannot silently resume a sweep.
        spec.axes.backends = vec![kind];
    }
    if let Some(p) = &args.policy {
        let c = values::policy(p)?;
        if c.sched == SchedPolicy::Easy {
            spec.axes.scheds = vec![SchedPolicy::Easy];
        } else if c.kind == PolicyKind::Fcfs {
            // Plain `fcfs` is the default of both axes: pin both.
            spec.axes.policies = vec![PolicyKind::Fcfs];
            spec.axes.scheds = vec![SchedPolicy::Fcfs];
        } else {
            spec.axes.policies = vec![c.kind];
        }
    }
    let opts = CampaignRunOptions {
        workers: args.workers,
        journal: args.journal.clone().map(std::path::PathBuf::from),
        resume: matches!(
            args.action,
            CampaignAction::Resume | CampaignAction::Report
        ),
        max_cells: if args.action == CampaignAction::Report {
            Some(0)
        } else {
            args.max_cells
        },
        ..CampaignRunOptions::default()
    };
    let started = std::time::Instant::now();
    let report = crate::campaign::run(&spec, &opts).map_err(|e| CliError(e.0))?;
    eprintln!(
        "campaign `{}`: {}/{} cells in {:.1}s",
        report.name,
        report.cells_done,
        report.cells_total,
        started.elapsed().as_secs_f64()
    );

    let json = envelope("campaign", &report.to_json(), &[]);
    if let Some(path) = &args.out {
        std::fs::write(path, &json)
            .map_err(|e| CliError(format!("cannot write report {path:?}: {e}")))?;
    }
    Ok(if args.json { json } else { report.render() })
}

/// Output of a `trace` action: the printable text plus whether the
/// process should exit non-zero (a diverging `trace diff`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutput {
    /// Printable result.
    pub text: String,
    /// `trace diff` found divergence: exit non-zero.
    pub differs: bool,
}

fn load_trace(path: &str) -> Result<Vec<TraceRecord>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read trace {path:?}: {e}")))?;
    obs::from_jsonl(&text).map_err(|e| CliError(format!("bad trace {path:?}: {e}")))
}

/// Execute a `trace` action against trace files on disk.
pub fn run_trace_tool(action: &TraceAction) -> Result<TraceOutput, CliError> {
    match action {
        TraceAction::Filter { file, filter, json } => {
            let kept = filter.build()?.apply(&load_trace(file)?);
            let text = if *json {
                let inner = serde_json::to_string(&kept)
                    .map_err(|e| CliError(format!("cannot serialise records: {e}")))?;
                envelope("trace", &inner, &[])
            } else {
                obs::to_jsonl(&kept)
            };
            Ok(TraceOutput {
                text,
                differs: false,
            })
        }
        TraceAction::Timeline { file, filter } => {
            let kept = filter.build()?.apply(&load_trace(file)?);
            Ok(TraceOutput {
                text: obs::timeline::render(&kept),
                differs: false,
            })
        }
        TraceAction::Diff { left, right, limit } => {
            let l = load_trace(left)?;
            let r = load_trace(right)?;
            let d = obs::diff::diff(&l, &r, *limit);
            Ok(TraceOutput {
                text: d.render(),
                differs: !d.is_empty(),
            })
        }
    }
}

fn resolve_addr(spec: &str) -> Result<SocketAddr, CliError> {
    spec.to_socket_addrs()
        .map_err(|e| CliError(format!("bad address {spec:?}: {e}")))?
        .next()
        .ok_or_else(|| CliError(format!("address {spec:?} resolves to nothing")))
}

fn tcp_connect(spec: &str) -> Result<TcpTransport, CliError> {
    let addr = resolve_addr(spec)?;
    TcpTransport::connect(addr).map_err(|e| CliError(format!("cannot connect to {spec}: {e}")))
}

/// Run the job server until it is shut down (a `quit` line on stdin, or
/// a client's `cancel --server`). Long-running: prints directly instead
/// of returning a report string.
pub fn run_serve(args: &ServeArgs) -> Result<(), CliError> {
    use std::io::Write as _;
    let addr = resolve_addr(&args.listen)?;
    let cfg = crate::serve::ServerConfig {
        state_dir: std::path::PathBuf::from(&args.state_dir),
        workers: if args.workers == 0 {
            crate::middleware::pool::default_workers()
        } else {
            args.workers
        },
        max_queue: args.max_queue,
        mem_budget_bytes: args.mem_budget_mb.saturating_mul(1 << 20),
        deadline: args.deadline_secs.map(std::time::Duration::from_secs),
        heartbeat_timeout: std::time::Duration::from_secs(args.heartbeat_secs),
        ..crate::serve::ServerConfig::default()
    };
    let (server, notes) = crate::serve::Server::open(cfg)
        .map_err(|e| CliError(format!("cannot open state dir {:?}: {e}", args.state_dir)))?;
    for note in &notes {
        eprintln!("recovery: {note}");
    }
    let (listener, local) = TcpTransport::listen(addr)
        .map_err(|e| CliError(format!("cannot listen on {}: {e}", args.listen)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError(format!("cannot poll listener: {e}")))?;
    // The one line scripts wait for before connecting.
    println!("serving on {local}");
    std::io::stdout().flush().ok();

    // A `quit` line stops the server; EOF merely stops the watcher, so a
    // backgrounded server with a closed stdin keeps serving.
    let stop = server.clone();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if matches!(line.trim(), "quit" | "shutdown") {
                        stop.shutdown();
                        return;
                    }
                }
            }
        }
    });

    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.is_stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                match TcpTransport::from_stream(stream) {
                    Ok(t) => {
                        let srv = server.clone();
                        sessions.push(std::thread::spawn(move || {
                            crate::serve::serve_session(&srv, t)
                        }));
                    }
                    Err(e) => eprintln!("session setup failed: {e}"),
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
        sessions.retain(|h| !h.is_finished());
    }
    // Sessions observe the stop flag, tell their clients, and return;
    // workers journal any interrupted run before exiting.
    for h in sessions {
        h.join().ok();
    }
    server.join_workers();
    eprintln!("server stopped");
    Ok(())
}

/// Write a collected trace as JSONL, byte-compatible with
/// `simulate --trace-out` for the same job.
fn write_collected_trace(path: &str, collected: &Collected) -> Result<(), CliError> {
    let records = collected.records().map_err(CliError)?;
    let text = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        obs::to_jsonl(&records)
    }))
    .map_err(|_| CliError("trace serialisation is unavailable in this build".to_string()))?;
    std::fs::write(path, text).map_err(|e| CliError(format!("cannot write trace {path:?}: {e}")))
}

/// Attach (reconnecting through the backoff window on torn links), print
/// progress to stderr and the final state/report to stdout. Returns
/// whether the run reached a `done` report.
fn stream_run(
    connect: &str,
    mut link: Option<TcpTransport>,
    run: u64,
    trace_out: Option<&str>,
) -> Result<bool, CliError> {
    let policy = ReconnectPolicy::default();
    let mut collected = Collected::default();
    let mut attempt = 0u32;
    let complete = loop {
        let outcome = match link.take() {
            Some(mut t) => crate::serve::attach_and_collect(&mut t, run, &mut collected),
            None => match tcp_connect(connect) {
                Ok(mut t) => crate::serve::attach_and_collect(&mut t, run, &mut collected),
                Err(_) => Ok(false),
            },
        };
        match outcome {
            Ok(true) => break true,
            Ok(false) => {
                attempt += 1;
                if attempt >= policy.attempts {
                    break false;
                }
                let delay = policy.delay(attempt);
                eprintln!(
                    "link torn at {} frames; reconnecting in {:.1}s (attempt {attempt}/{})",
                    collected.frames.len(),
                    delay.as_secs_f64(),
                    policy.attempts - 1,
                );
                std::thread::sleep(delay);
            }
            Err(e) => return Err(CliError(e)),
        }
    };
    eprintln!(
        "collected {} trace frames{}",
        collected.frames.len(),
        if collected.is_contiguous() { "" } else { " (sequence has gaps)" },
    );
    if let Some(path) = trace_out {
        write_collected_trace(path, &collected)?;
    }
    match &collected.report {
        Some((state, body)) => {
            println!("state {state}");
            if !body.is_empty() {
                println!("{body}");
            }
            Ok(complete && state == "done")
        }
        None => {
            eprintln!("gave up after {} attempts without a final report", policy.attempts);
            Ok(false)
        }
    }
}

/// Submit one job and (unless detached) stream it to completion. Returns
/// whether the run was accepted and finished `done` — the process exit
/// status.
pub fn run_submit(args: &SubmitArgs) -> Result<bool, CliError> {
    use std::io::Write as _;
    let mut t = tcp_connect(&args.connect)?;
    let client = format!("dualboot-cli/{}", std::process::id());
    let rsp = crate::serve::submit_over(&mut t, &client, args.tag.as_deref(), &args.job)
        .map_err(CliError)?;
    match rsp {
        Response::Accepted { run } => {
            // Printed and flushed before any streaming so wrappers can
            // read the id even if this client dies mid-stream.
            println!("run {run}");
            std::io::stdout().flush().ok();
            if args.detach {
                return Ok(true);
            }
            stream_run(&args.connect, Some(t), run, args.trace_out.as_deref())
        }
        Response::Rejected { reason, retry_after_ms } => {
            eprintln!("rejected: {reason} (retry after {retry_after_ms} ms)");
            Ok(false)
        }
        Response::ShuttingDown => {
            eprintln!("server is shutting down");
            Ok(false)
        }
        other => Err(CliError(format!("unexpected admission response {other:?}"))),
    }
}

/// (Re)attach to a run and stream it to completion. Returns whether the
/// run finished `done`.
pub fn run_attach(args: &AttachArgs) -> Result<bool, CliError> {
    stream_run(&args.connect, None, args.run, args.trace_out.as_deref())
}

/// List the server's runs as a table.
pub fn run_runs(args: &RunsArgs) -> Result<String, CliError> {
    let mut t = tcp_connect(&args.connect)?;
    let runs = crate::serve::list_runs(&mut t).map_err(CliError)?;
    let mut table = Table::new("runs", &["run", "state", "kind", "client", "tag"]);
    for r in &runs {
        table.row(&[
            format!("{}", r.id),
            r.state.clone(),
            r.kind.clone(),
            r.client.clone(),
            r.tag.clone(),
        ]);
    }
    Ok(table.render())
}

/// Cancel one run, or gracefully stop the whole server.
pub fn run_cancel(args: &CancelArgs) -> Result<String, CliError> {
    let mut t = tcp_connect(&args.connect)?;
    match args.target {
        CancelTarget::Run(id) => {
            let rsp = crate::serve::request(&mut t, &crate::serve::Request::Cancel { run: id })
                .map_err(CliError)?;
            match rsp {
                Response::Cancelled { run } => Ok(format!("run {run} cancelled\n")),
                Response::Error { reason } => Err(CliError(reason)),
                other => Err(CliError(format!("unexpected response {other:?}"))),
            }
        }
        CancelTarget::Server => {
            let rsp = crate::serve::request(&mut t, &crate::serve::Request::Shutdown)
                .map_err(CliError)?;
            match rsp {
                Response::ShuttingDown => Ok("server shutting down\n".to_string()),
                Response::Error { reason } => Err(CliError(reason)),
                other => Err(CliError(format!("unexpected response {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
        assert_eq!(Command::parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(Command::parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn artifacts_command() {
        assert_eq!(Command::parse(&argv("artifacts")).unwrap(), Command::Artifacts);
    }

    #[test]
    fn simulate_defaults() {
        let cmd = Command::parse(&argv("simulate")).unwrap();
        assert_eq!(cmd, Command::Simulate(SimulateArgs::default()));
    }

    #[test]
    fn simulate_full_flags() {
        let cmd = Command::parse(&argv(
            "simulate --seed 7 --mode static --policy threshold --win-frac 0.5 \
             --load 0.9 --hours 4 --split 8 --series --faults chaos",
        ))
        .unwrap();
        let Command::Simulate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.seed, 7);
        assert_eq!(a.mode, Mode::StaticSplit);
        assert!(matches!(a.policy, PolicyKind::Threshold { queue_threshold: 2 }));
        assert!(a.omniscient);
        assert_eq!(a.windows_fraction, 0.5);
        assert_eq!(a.load, 0.9);
        assert_eq!(a.hours, 4);
        assert_eq!(a.split, 8);
        assert!(a.series);
        assert_eq!(a.faults.as_deref(), Some("chaos"));
    }

    #[test]
    fn simulate_supervision_toggles() {
        let cmd = Command::parse(&argv("simulate --watchdog off --journal off")).unwrap();
        let Command::Simulate(a) = cmd else {
            panic!("wrong command")
        };
        assert!(!a.watchdog);
        assert!(!a.journal);
        let cmd = Command::parse(&argv("simulate --watchdog on")).unwrap();
        let Command::Simulate(a) = cmd else {
            panic!("wrong command")
        };
        assert!(a.watchdog, "explicit on");
        assert!(a.journal, "journal untouched stays on");
    }

    #[test]
    fn simulate_queue_backend_flag() {
        let cmd = Command::parse(&argv("simulate --queue calendar")).unwrap();
        let Command::Simulate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.queue, QueueBackend::Calendar);
        assert_eq!(
            SimulateArgs::default().queue,
            QueueBackend::Heap,
            "reference backend by default"
        );
        assert!(Command::parse(&argv("simulate --queue splay")).is_err());
    }

    #[test]
    fn backend_flag_is_uniform_across_commands() {
        let Command::Simulate(s) = Command::parse(&argv("simulate --backend elastic")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(s.backend, Some(NodeBackendKind::Elastic));
        assert_eq!(SimulateArgs::default().backend, None, "derived from the mode by default");
        let Command::Grid(g) = Command::parse(&argv("grid --backend vm")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(g.backend, Some(NodeBackendKind::Vm));
        let Command::Campaign(c) =
            Command::parse(&argv("campaign run --builtin smoke --backend dual-boot")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(c.backend, Some(NodeBackendKind::DualBoot));
        let Command::Submit(sub) =
            Command::parse(&argv("submit --connect h:1 --backend vm")).unwrap()
        else {
            panic!("wrong command")
        };
        let JobSpec::Sim(job) = &sub.job else { panic!("expected a sim job") };
        assert_eq!(job.backend.as_deref(), Some("vm"));
        // The same unknown spelling fails identically everywhere.
        assert!(Command::parse(&argv("simulate --backend mainframe")).is_err());
        assert!(Command::parse(&argv("grid --backend mainframe")).is_err());
        assert!(Command::parse(&argv("submit --connect h:1 --backend mainframe")).is_err());
    }

    #[test]
    fn policy_flag_is_uniform_across_commands() {
        let Command::Simulate(s) = Command::parse(&argv("simulate --policy easy")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(s.sched, SchedPolicy::Easy);
        assert_eq!(s.policy, PolicyKind::Fcfs, "easy leaves the switch axis alone");
        assert!(!s.omniscient);
        assert_eq!(SimulateArgs::default().sched, SchedPolicy::Fcfs);
        let Command::Grid(g) = Command::parse(&argv("grid --policy easy")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(g.sched, SchedPolicy::Easy);
        let Command::Campaign(c) =
            Command::parse(&argv("campaign run --builtin smoke --policy easy")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(c.policy.as_deref(), Some("easy"));
        let Command::Submit(sub) =
            Command::parse(&argv("submit --connect h:1 --policy easy")).unwrap()
        else {
            panic!("wrong command")
        };
        let JobSpec::Sim(job) = &sub.job else { panic!("expected a sim job") };
        assert_eq!(job.policy, "easy");
        // The same unknown spelling fails identically everywhere.
        assert!(Command::parse(&argv("simulate --policy eager")).is_err());
        assert!(Command::parse(&argv("grid --policy eager")).is_err());
        assert!(Command::parse(&argv("campaign run --builtin smoke --policy eager")).is_err());
        assert!(Command::parse(&argv("submit --connect h:1 --policy eager")).is_err());
        // Grid takes only the queue-scheduling axis: switch policies are
        // per-member and rejected.
        assert!(Command::parse(&argv("grid --policy threshold")).is_err());
    }

    #[test]
    fn easy_simulate_runs_and_reports_backfills() {
        let args = SimulateArgs {
            hours: 2,
            sched: SchedPolicy::Easy,
            ..SimulateArgs::default()
        };
        let out = run_simulate(&args).unwrap();
        assert!(out.contains("simulation result"));
        // The sched section only appears when jobs actually backfilled;
        // the synthetic campus workload has no walltimes, so EASY stays
        // byte-identical to FCFS and the section stays silent.
        let fcfs = run_simulate(&SimulateArgs { hours: 2, ..SimulateArgs::default() }).unwrap();
        assert_eq!(out, fcfs, "walltime-less workload: easy == fcfs");
    }

    #[test]
    fn run_simulate_rejects_contradictory_mode_backend() {
        let args = SimulateArgs {
            mode: Mode::StaticSplit,
            backend: Some(NodeBackendKind::Vm),
            hours: 1,
            ..SimulateArgs::default()
        };
        let err = run_simulate(&args).unwrap_err();
        assert!(err.0.contains("cannot run"), "typed config error: {err}");
    }

    #[test]
    fn run_simulate_on_the_vm_and_elastic_backends() {
        for kind in [NodeBackendKind::Vm, NodeBackendKind::Elastic] {
            let args = SimulateArgs {
                hours: 2,
                backend: Some(kind),
                ..SimulateArgs::default()
            };
            let out = run_simulate(&args).unwrap();
            assert!(out.contains("simulation result"), "backend {}", kind.name());
        }
    }

    #[test]
    fn simulate_rejects_bad_input() {
        assert!(Command::parse(&argv("simulate --mode bsd")).is_err());
        assert!(Command::parse(&argv("simulate --watchdog maybe")).is_err());
        assert!(Command::parse(&argv("simulate --journal")).is_err());
        assert!(Command::parse(&argv("simulate --policy magic")).is_err());
        assert!(Command::parse(&argv("simulate --win-frac 1.5")).is_err());
        assert!(Command::parse(&argv("simulate --seed")).is_err());
        assert!(Command::parse(&argv("simulate --faults")).is_err());
        assert!(Command::parse(&argv("simulate --frobnicate")).is_err());
        assert!(Command::parse(&argv("teleport")).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cmd = Command::parse(&argv("serve")).unwrap();
        assert_eq!(cmd, Command::Serve(ServeArgs::default()));
        let cmd = Command::parse(&argv(
            "serve --listen 0.0.0.0:4850 --state-dir /tmp/s --workers 2 \
             --max-queue 9 --mem-budget-mb 512 --deadline-secs 30 --heartbeat-secs 5",
        ))
        .unwrap();
        let Command::Serve(a) = cmd else { panic!("wrong command") };
        assert_eq!(a.listen, "0.0.0.0:4850");
        assert_eq!(a.state_dir, "/tmp/s");
        assert_eq!(a.workers, 2);
        assert_eq!(a.max_queue, 9);
        assert_eq!(a.mem_budget_mb, 512);
        assert_eq!(a.deadline_secs, Some(30));
        assert_eq!(a.heartbeat_secs, 5);
        assert!(Command::parse(&argv("serve --max-queue 0")).is_err());
        assert!(Command::parse(&argv("serve --heartbeat-secs 0")).is_err());
        assert!(Command::parse(&argv("serve --frobnicate")).is_err());
    }

    #[test]
    fn submit_builds_a_sim_job() {
        let cmd = Command::parse(&argv(
            "submit --connect 127.0.0.1:4850 --tag demo --seed 7 --mode static \
             --policy threshold --hours 2 --queue calendar --detach",
        ))
        .unwrap();
        let Command::Submit(a) = cmd else { panic!("wrong command") };
        assert_eq!(a.connect, "127.0.0.1:4850");
        assert_eq!(a.tag.as_deref(), Some("demo"));
        assert!(a.detach);
        let JobSpec::Sim(job) = &a.job else { panic!("expected a sim job") };
        assert_eq!(job.seed, 7);
        assert_eq!(job.mode, "static");
        assert_eq!(job.policy, "threshold");
        assert_eq!(job.hours, 2);
        assert_eq!(job.queue, "calendar");
        // Bad values are caught client-side, before any connection.
        assert!(Command::parse(&argv("submit --connect h:1 --mode bsd")).is_err());
        assert!(Command::parse(&argv("submit --seed 7")).is_err(), "--connect required");
    }

    #[test]
    fn submit_builds_a_campaign_job_and_rejects_mixes() {
        let cmd = Command::parse(&argv(
            "submit --connect h:1 --campaign-builtin smoke --campaign-seed 9 \
             --campaign-workers 3",
        ))
        .unwrap();
        let Command::Submit(a) = cmd else { panic!("wrong command") };
        let JobSpec::Campaign(job) = &a.job else { panic!("expected a campaign job") };
        assert_eq!(job.builtin, "smoke");
        assert_eq!(job.seed, 9);
        assert_eq!(job.workers, 3);
        assert!(
            Command::parse(&argv("submit --connect h:1 --campaign-builtin smoke --seed 7"))
                .is_err(),
            "campaign and sim flags are exclusive"
        );
    }

    #[test]
    fn attach_runs_cancel_forms() {
        let cmd = Command::parse(&argv("attach 12 --connect h:1 --trace-out t.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Attach(AttachArgs {
                connect: "h:1".into(),
                run: 12,
                trace_out: Some("t.jsonl".into()),
            })
        );
        assert!(Command::parse(&argv("attach --connect h:1")).is_err(), "run id required");
        let cmd = Command::parse(&argv("runs --connect h:1")).unwrap();
        assert_eq!(cmd, Command::Runs(RunsArgs { connect: "h:1".into() }));
        let cmd = Command::parse(&argv("cancel 3 --connect h:1")).unwrap();
        assert_eq!(
            cmd,
            Command::CancelRun(CancelArgs {
                connect: "h:1".into(),
                target: CancelTarget::Run(3),
            })
        );
        let cmd = Command::parse(&argv("cancel --server --connect h:1")).unwrap();
        assert_eq!(
            cmd,
            Command::CancelRun(CancelArgs {
                connect: "h:1".into(),
                target: CancelTarget::Server,
            })
        );
        assert!(Command::parse(&argv("cancel --connect h:1")).is_err());
        assert!(Command::parse(&argv("cancel 3 --server --connect h:1")).is_err());
    }

    #[test]
    fn grid_defaults() {
        let cmd = Command::parse(&argv("grid")).unwrap();
        assert_eq!(cmd, Command::Grid(GridArgs::default()));
    }

    #[test]
    fn grid_full_flags() {
        let cmd = Command::parse(&argv(
            "grid --clusters 4 --seed 7 --routing coop --win-frac 0.5 \
             --load 0.6 --hours 12 --report-secs 60 --faults chaos --json",
        ))
        .unwrap();
        let Command::Grid(a) = cmd else { panic!("wrong command") };
        assert_eq!(a.clusters, 4);
        assert_eq!(a.seed, 7);
        assert_eq!(a.routing, Some(RoutePolicy::SwitchCoop));
        assert_eq!(a.windows_fraction, 0.5);
        assert_eq!(a.load, 0.6);
        assert_eq!(a.hours, 12);
        assert_eq!(a.report_secs, 60);
        assert_eq!(a.faults.as_deref(), Some("chaos"));
        assert!(a.json);
    }

    #[test]
    fn grid_sweep_keyword_clears_routing() {
        let cmd = Command::parse(&argv("grid --routing sweep")).unwrap();
        assert_eq!(cmd, Command::Grid(GridArgs::default()));
    }

    #[test]
    fn grid_rejects_bad_input() {
        assert!(Command::parse(&argv("grid --routing warp")).is_err());
        assert!(Command::parse(&argv("grid --clusters 0")).is_err());
        assert!(Command::parse(&argv("grid --report-secs 0")).is_err());
        assert!(Command::parse(&argv("grid --win-frac 2")).is_err());
        assert!(Command::parse(&argv("grid --frobnicate")).is_err());
    }

    #[test]
    fn run_grid_single_policy_renders_member_and_broker_tables() {
        let args = GridArgs {
            hours: 2,
            routing: Some(RoutePolicy::QueueDepth),
            ..GridArgs::default()
        };
        let out = run_grid(&args).unwrap();
        assert!(out.contains("grid members [queue]"));
        assert!(out.contains("grid broker"));
        assert!(!out.contains("policy sweep"), "single run has no sweep");
    }

    #[test]
    fn run_grid_sweep_compares_every_policy() {
        let args = GridArgs {
            hours: 2,
            ..GridArgs::default()
        };
        let out = run_grid(&args).unwrap();
        assert!(out.contains("grid policy sweep"));
        for p in RoutePolicy::ALL {
            assert!(out.contains(&format!("grid members [{}]", p.name())));
        }
    }

    #[test]
    fn run_grid_chaos_renders_member_chaos_sections() {
        let args = GridArgs {
            hours: 2,
            routing: Some(RoutePolicy::SwitchCoop),
            faults: Some("chaos".to_string()),
            ..GridArgs::default()
        };
        let out = run_grid(&args).unwrap();
        assert!(out.contains("-- member "), "chaos must surface per member:\n{out}");
    }

    #[test]
    fn run_grid_rejects_bad_plan() {
        let args = GridArgs {
            faults: Some("{broken".to_string()),
            ..GridArgs::default()
        };
        // Offline builds substitute a typecheck-only serde_json that
        // cannot parse; skip the assertion there.
        let Ok(res) = std::panic::catch_unwind(|| run_grid(&args)) else {
            return;
        };
        assert!(res.is_err());
    }

    #[test]
    fn swf_with_queue_mapping() {
        let cmd = Command::parse(&argv("swf trace.swf --windows-queue 2 --seed 5")).unwrap();
        let Command::Swf(a) = cmd else { panic!("wrong command") };
        assert_eq!(a.path, "trace.swf");
        assert_eq!(a.os, OsMapping::ByQueue { windows_queue: 2 });
        assert_eq!(a.sim.seed, 5);
    }

    #[test]
    fn swf_defaults_to_fraction_mapping() {
        let cmd = Command::parse(&argv("swf trace.swf --win-frac 0.4")).unwrap();
        let Command::Swf(a) = cmd else { panic!("wrong command") };
        assert_eq!(
            a.os,
            OsMapping::Fraction {
                windows_fraction: 0.4,
                seed: 2012
            }
        );
    }

    #[test]
    fn swf_needs_path() {
        assert!(Command::parse(&argv("swf")).is_err());
    }

    #[test]
    fn run_simulate_produces_a_row() {
        let args = SimulateArgs {
            hours: 2,
            ..SimulateArgs::default()
        };
        let out = run_simulate(&args).unwrap();
        assert!(out.contains("simulation result"));
        assert!(out.contains("run"));
        assert!(!out.contains("== chaos =="), "clean run has no chaos section");
    }

    #[test]
    fn resolve_fault_plan_variants() {
        // The chaos shorthand seeds from the scenario.
        let p = resolve_fault_plan("chaos", 33).unwrap();
        assert_eq!(p, FaultPlan::default_chaos(33));
        // Missing files are user errors, not panics.
        assert!(resolve_fault_plan("/no/such/plan.json", 1).is_err());
        // Offline builds substitute a typecheck-only serde_json that
        // cannot parse; skip the inline-JSON variants there.
        let Ok(p) = std::panic::catch_unwind(|| resolve_fault_plan(r#"{"seed": 9}"#, 1))
        else {
            return;
        };
        assert_eq!(p.unwrap().seed, 9);
        // Bad JSON is a user error too.
        assert!(resolve_fault_plan("{not json", 1).is_err());
    }

    #[test]
    fn run_simulate_with_faults_renders_chaos_section() {
        // A scheduled reset always executes, so the section is guaranteed
        // non-empty regardless of what the link dice rolls.
        let plan = r#"{
            "seed": 3,
            "link": {"drop_p": 0.2, "dup_p": 0.1, "delay_p": 0.1},
            "events": [{"at": 600000, "kind": {"PowerReset": {"node": 5}}}]
        }"#;
        let args = SimulateArgs {
            hours: 2,
            faults: Some(plan.to_string()),
            ..SimulateArgs::default()
        };
        // Offline builds substitute a typecheck-only serde_json that
        // cannot parse the plan; skip there.
        let Ok(res) = std::panic::catch_unwind(|| run_simulate(&args)) else {
            return;
        };
        let out = res.unwrap();
        assert!(out.contains("simulation result"));
        assert!(out.contains("== chaos =="), "faulty run reports chaos:\n{out}");
    }

    #[test]
    fn run_simulate_with_daemon_crash_renders_health_section() {
        // A daemon crash always registers in the health counters, so the
        // section must surface in the report. (A reimage would not do:
        // the CLI's v2 cluster boots via PXE past a wiped MBR.)
        let plan = r#"{
            "seed": 3,
            "events": [{"at": 1200000, "kind":
                {"DaemonCrash": {"side": "Linux", "downtime": 480000}}}]
        }"#;
        let args = SimulateArgs {
            hours: 2,
            mode: Mode::DualBoot,
            faults: Some(plan.to_string()),
            ..SimulateArgs::default()
        };
        // Offline builds substitute a typecheck-only serde_json that
        // cannot parse; skip the assertion there.
        let Ok(res) = std::panic::catch_unwind(|| run_simulate(&args)) else {
            return;
        };
        let out = res.unwrap();
        assert!(
            out.contains("== node health =="),
            "supervision must report:\n{out}"
        );
        assert!(out.contains("stranded capacity"));
    }

    #[test]
    fn run_simulate_rejects_bad_plan() {
        let args = SimulateArgs {
            faults: Some("{broken".to_string()),
            ..SimulateArgs::default()
        };
        // Offline builds substitute a typecheck-only serde_json that
        // panics instead of erroring on bad input; skip there.
        let Ok(res) = std::panic::catch_unwind(|| run_simulate(&args)) else {
            return;
        };
        assert!(res.is_err());
    }

    #[test]
    fn run_swf_end_to_end() {
        let swf = "; test\n1 10 1 300 4 -1 -1 4 -1 -1 1 1 1 1 0 -1 -1 -1\n";
        let args = SwfArgs {
            path: "x.swf".to_string(),
            os: OsMapping::ByQueue { windows_queue: 1 },
            sim: SimulateArgs::default(),
        };
        let out = run_swf(&args, swf).unwrap();
        assert!(out.contains("imported 1 jobs"));
        assert!(run_swf(&args, "garbage line\n").is_err());
    }

    #[test]
    fn campaign_parse_full_flags() {
        let cmd = Command::parse(&argv(
            "campaign run --builtin smoke --seed 7 --workers 2 --journal j.log --max-cells 5 --out r.json --json",
        ))
        .unwrap();
        let Command::Campaign(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.action, CampaignAction::Run);
        assert_eq!(a.builtin.as_deref(), Some("smoke"));
        assert_eq!(a.seed, 7);
        assert_eq!(a.workers, 2);
        assert_eq!(a.journal.as_deref(), Some("j.log"));
        assert_eq!(a.max_cells, Some(5));
        assert_eq!(a.out.as_deref(), Some("r.json"));
        assert!(a.json);
    }

    #[test]
    fn campaign_parse_manifest_path() {
        let cmd = Command::parse(&argv("campaign run sweep.json --workers 4")).unwrap();
        let Command::Campaign(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.manifest.as_deref(), Some("sweep.json"));
        assert!(a.builtin.is_none());
    }

    #[test]
    fn campaign_parse_rejects_nonsense() {
        // No action.
        assert!(Command::parse(&argv("campaign")).is_err());
        assert!(Command::parse(&argv("campaign explode")).is_err());
        // Manifest and builtin are mutually exclusive — and one is needed.
        assert!(Command::parse(&argv("campaign run")).is_err());
        assert!(Command::parse(&argv("campaign run m.json --builtin smoke")).is_err());
        assert!(Command::parse(&argv("campaign run a.json b.json")).is_err());
        // Resume and report need a journal.
        assert!(Command::parse(&argv("campaign resume --builtin smoke")).is_err());
        assert!(Command::parse(&argv("campaign report --builtin smoke")).is_err());
        assert!(
            Command::parse(&argv("campaign resume --builtin smoke --journal j.log")).is_ok()
        );
    }

    #[test]
    fn run_campaign_unknown_builtin_is_an_error() {
        let args = CampaignArgs {
            builtin: Some("nope".to_string()),
            ..CampaignArgs::default()
        };
        let err = run_campaign(&args).unwrap_err();
        assert!(err.0.contains("unknown builtin"));
    }

    #[test]
    fn run_campaign_json_is_worker_count_invariant() {
        // A 2-cell slice of the smoke manifest keeps this test quick while
        // still exercising journalless execution end to end.
        let base = CampaignArgs {
            builtin: Some("smoke".to_string()),
            seed: 3,
            max_cells: Some(2),
            json: true,
            ..CampaignArgs::default()
        };
        let one = run_campaign(&CampaignArgs {
            workers: 1,
            ..base.clone()
        })
        .unwrap();
        let two = run_campaign(&CampaignArgs {
            workers: 2,
            ..base
        })
        .unwrap();
        assert_eq!(one, two);
        assert!(one.starts_with("{\"schema\":\"dualboot/v1\",\"kind\":\"campaign\""));
    }
}
