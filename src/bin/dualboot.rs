//! The `dualboot` CLI: run reproductions from the command line.
//!
//! ```sh
//! cargo run --release --bin dualboot -- simulate --mode dualboot --policy threshold
//! cargo run --release --bin dualboot -- grid --clusters 3 --seed 7
//! cargo run --release --bin dualboot -- swf my-trace.swf --windows-queue 1
//! cargo run --release --bin dualboot -- artifacts
//! ```

use hybrid_cluster::bootconf::diskpart::DiskpartScript;
use hybrid_cluster::bootconf::grub::eridani as grub;
use hybrid_cluster::bootconf::idedisk::IdeDisk;
use hybrid_cluster::cli::{self, Command};
use hybrid_cluster::prelude::*;
use hybrid_cluster::sched::script::PbsScript;
use std::process::ExitCode;

// Per-cell heap accounting for `dualboot campaign` (the counters read
// zero outside a campaign measure scope and cost two thread-local checks
// per allocation otherwise).
#[global_allocator]
static ALLOC: hybrid_cluster::campaign::mem::CountingAlloc =
    hybrid_cluster::campaign::mem::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(Command::Artifacts) => {
            println!("--- Figure 2: menu.lst ---\n{}", grub::menu_lst().emit());
            println!(
                "--- Figure 3: controlmenu.lst ---\n{}",
                grub::controlmenu(OsKind::Linux).emit()
            );
            println!(
                "--- Figure 4: OS-switch job ---\n{}",
                PbsScript::switch_job(OsKind::Windows).emit()
            );
            println!(
                "--- Figure 9: stock diskpart.txt ---\n{}",
                DiskpartScript::original().emit()
            );
            println!(
                "--- Figure 10: v1 diskpart.txt ---\n{}",
                DiskpartScript::modified_v1(150_000).emit()
            );
            println!(
                "--- Figure 15: v2 reimage diskpart.txt ---\n{}",
                DiskpartScript::reimage_v2().emit()
            );
            println!("--- Figure 14: v2 ide.disk ---\n{}", IdeDisk::eridani_v2().emit());
            ExitCode::SUCCESS
        }
        Ok(Command::Simulate(sim_args)) => match cli::run_simulate(&sim_args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Grid(grid_args)) => match cli::run_grid(&grid_args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Campaign(campaign_args)) => match cli::run_campaign(&campaign_args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Serve(serve_args)) => match cli::run_serve(&serve_args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Submit(submit_args)) => match cli::run_submit(&submit_args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Attach(attach_args)) => match cli::run_attach(&attach_args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Runs(runs_args)) => match cli::run_runs(&runs_args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::CancelRun(cancel_args)) => match cli::run_cancel(&cancel_args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Trace(action)) => match cli::run_trace_tool(&action) {
            Ok(out) => {
                print!("{}", out.text);
                if out.differs {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Swf(swf_args)) => match std::fs::read_to_string(&swf_args.path) {
            Ok(text) => match cli::run_swf(&swf_args, &text) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", swf_args.path);
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
