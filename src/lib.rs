#![warn(missing_docs)]

//! # hybrid-cluster — a Rust reproduction of *Hybrid Computer Cluster with
//! High Flexibility* (Liang, Holmes & Kureshi, IEEE CLUSTER 2012)
//!
//! The paper deploys **dualboot-oscar**, a middleware that turns a legacy
//! 16-node Beowulf cluster into a *bi-stable* Linux/Windows hybrid: both
//! schedulers stay live, and daemons reboot drained nodes into whichever
//! OS has queued demand. This workspace rebuilds the entire system as a
//! deterministic simulation — the middleware itself, both schedulers, the
//! boot-path hardware model, the deployment flows, and every config
//! dialect the paper's figures show.
//!
//! This crate is the facade: it re-exports each layer and hosts the
//! runnable examples and the cross-crate integration tests.
//!
//! ## Layers (bottom-up)
//!
//! | Re-export | Crate | What it is |
//! |---|---|---|
//! | [`des`] | `dualboot-des` | discrete-event engine: clock, queue, RNG, stats |
//! | [`bootconf`] | `dualboot-bootconf` | GRUB/GRUB4DOS/diskpart/ide.disk dialects |
//! | [`hw`] | `dualboot-hw` | disks, MBR, PXE, node boot state machine |
//! | [`sched`] | `dualboot-sched` | PBS-like and WinHPC-like schedulers |
//! | [`net`] | `dualboot-net` | Figure-5 wire format, TCP/in-proc transports |
//! | [`deploy`] | `dualboot-deploy` | OSCAR/Windows imaging, v1/v2 flows |
//! | [`middleware`] | `dualboot-core` | **the paper's contribution**: detectors, policies, daemons |
//! | [`workload`] | `dualboot-workload` | Table I catalogue, synthetic + MDCS traces |
//! | [`cluster`] | `dualboot-cluster` | the end-to-end simulated Eridani |
//! | [`grid`] | `dualboot-grid` | Queensgate campus-grid federation + job-routing broker |
//! | [`campaign`] | `dualboot-campaign` | fleet-scale sweep manifests, resumable execution, percentile reports |
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_cluster::cluster::{SimConfig, Simulation};
//! use hybrid_cluster::workload::generator::WorkloadSpec;
//!
//! // The paper's cluster under dualboot-oscar v2.0, FCFS policy.
//! let config = SimConfig::builder().v2().seed(42).build();
//! let trace = WorkloadSpec::campus_default(42).generate();
//! let result = Simulation::new(config, trace).run();
//! assert_eq!(result.unfinished, 0);
//! println!(
//!     "utilisation {:.1}%, {} OS switches, mean wait {:.0}s",
//!     100.0 * result.utilisation(),
//!     result.switches,
//!     result.mean_wait_s(),
//! );
//! ```

pub use dualboot_bootconf as bootconf;
pub use dualboot_campaign as campaign;
pub use dualboot_cluster as cluster;
pub use dualboot_core as middleware;
pub use dualboot_deploy as deploy;
pub use dualboot_des as des;
pub use dualboot_grid as grid;
pub use dualboot_hw as hw;
pub use dualboot_net as net;
pub use dualboot_obs as obs;
pub use dualboot_sched as sched;
pub use dualboot_serve as serve;
pub use dualboot_workload as workload;

/// The `dualboot` command-line interface (see `src/bin/dualboot.rs`).
pub mod cli;

/// Everything a downstream user typically needs, in one import.
pub mod prelude {
    pub use dualboot_bootconf::node::NodeId;
    pub use dualboot_bootconf::os::OsKind;
    pub use dualboot_cluster::{
        ElasticPolicy, FaultEvent, FaultKind, FaultPlan, FaultStats, Mode, NodeBackend,
        NodeBackendKind, PolicyKind, SimConfig, SimResult, Simulation, VmModel,
    };
    pub use dualboot_core::{Action, FcfsPolicy, LinuxDaemon, SwitchPolicy, WindowsDaemon};
    pub use dualboot_des::time::{SimDuration, SimTime};
    pub use dualboot_grid::{GridResult, GridSim, GridSpec, RoutePolicy};
    pub use dualboot_obs::{HotLoopProfile, ObsConfig, ObsEvent, ObsSink, Subsystem, TraceRecord};
    pub use dualboot_sched::job::{JobId, JobKind, JobRequest};
    pub use dualboot_sched::scheduler::Scheduler;
    pub use dualboot_workload::generator::{SubmitEvent, WorkloadSpec};
}
