//! Parallel seed sweep: confidence intervals for the headline numbers.
//!
//! Single runs can mislead (one seed's burst phasing can flatter either
//! system), so this example replicates each system across 32 seeds with
//! [`hybrid_cluster::cluster::replicate`], which fans simulations over a
//! scoped thread pool and reduces deterministically (same summary for any
//! worker count). Results are also written as JSON for diffing.
//!
//! ```sh
//! cargo run --release --example seed_sweep
//! ```

use hybrid_cluster::cluster::replicate::replicate;
use hybrid_cluster::cluster::report::{fmt_secs, Table};
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::generator::WorkloadSpec;
use std::collections::BTreeMap;

type Configure = Box<dyn Fn(&mut SimConfig) + Sync>;

fn scenario(seed: u64, configure: impl Fn(&mut SimConfig)) -> (SimConfig, Vec<SubmitEvent>) {
    let trace = WorkloadSpec {
        windows_fraction: 0.35,
        duration: SimDuration::from_hours(8),
        ..WorkloadSpec::campus_default(seed)
    }
    .with_offered_load(0.7, 64)
    .generate();
    let mut cfg = SimConfig::builder().v2().seed(seed).build();
    cfg.horizon = SimDuration::from_hours(48);
    configure(&mut cfg);
    (cfg, trace)
}

fn main() {
    let seeds: Vec<u64> = (1..=32).collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    println!("replicating 4 systems x {} seeds on {workers} workers...", seeds.len());

    let systems: Vec<(&str, Configure)> = vec![
        ("dualboot/fcfs", Box::new(|_: &mut SimConfig| {})),
        (
            "dualboot/threshold",
            Box::new(|cfg: &mut SimConfig| {
                cfg.policy = PolicyKind::Threshold { queue_threshold: 2 };
                cfg.omniscient = true;
            }),
        ),
        (
            "static 8/8",
            Box::new(|cfg: &mut SimConfig| {
                cfg.mode = Mode::StaticSplit;
                cfg.initial_linux_nodes = 8;
            }),
        ),
        (
            "mono-stable",
            Box::new(|cfg: &mut SimConfig| cfg.mode = Mode::MonoStable),
        ),
    ];

    let mut table = Table::new(
        "32-seed sweep: campus day, 35% Windows, load 0.7 (mean ± std dev)",
        &["system", "wait", "±", "util", "±", "switches", "turnaround"],
    );
    let mut json = BTreeMap::new();
    for (label, configure) in &systems {
        let summary = replicate(&seeds, workers, |seed| scenario(seed, configure));
        table.row(&[
            label.to_string(),
            fmt_secs(summary.wait_s.mean()),
            fmt_secs(summary.wait_s.std_dev()),
            format!("{:.1}%", 100.0 * summary.utilisation.mean()),
            format!("{:.1}%", 100.0 * summary.utilisation.std_dev()),
            format!("{:.1}", summary.switches.mean()),
            fmt_secs(summary.turnaround_s.mean()),
        ]);
        json.insert(
            label.to_string(),
            serde_json::json!({
                "runs": summary.runs,
                "wait_mean_s": summary.wait_s.mean(),
                "wait_std_s": summary.wait_s.std_dev(),
                "util_mean": summary.utilisation.mean(),
                "switches_mean": summary.switches.mean(),
                "turnaround_mean_s": summary.turnaround_s.mean(),
            }),
        );
    }
    println!("\n{}", table.render());
    let path = std::env::temp_dir().join("dualboot_seed_sweep.json");
    if let Ok(text) = serde_json::to_string_pretty(&json) {
        if std::fs::write(&path, text).is_ok() {
            println!("raw results written to {}", path.display());
        }
    }
}
