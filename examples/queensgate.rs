//! Queensgate federation: static campus split vs a grid broker.
//!
//! §V of the paper situates the hybrid Eridani inside the University of
//! Huddersfield's Queensgate campus grid. The pre-broker world carves the
//! campus into fixed sub-grids (jobs pinned per cluster); the federation
//! layer replaces that with a broker routing one unified stream over
//! gossiped cluster state. This example sweeps the Windows share of the
//! stream and prints the crossover: how much mean wait each routing
//! policy buys over the static split as the mix shifts, then shows how a
//! lossy campus network erodes the broker's advantage.
//!
//! ```sh
//! cargo run --release --example queensgate
//! ```

use hybrid_cluster::cluster::report::{fmt_secs, Table};
use hybrid_cluster::des::time::SimDuration;
use hybrid_cluster::grid::{GridSim, GridSpec, RoutePolicy};

fn run(seed: u64, win_frac: f64, routing: RoutePolicy, lossy: bool) -> (f64, u32, u64) {
    let mut spec = GridSpec::campus(seed, 3);
    spec.routing = routing;
    spec.workload.windows_fraction = win_frac;
    spec.workload.duration = SimDuration::from_hours(24);
    if lossy {
        spec.gossip.drop_p = 0.3;
        spec.gossip.delay_p = 0.2;
    }
    let r = GridSim::new(spec).run();
    (
        r.mean_wait_s(),
        r.total_switches(),
        r.broker.stale_decisions,
    )
}

fn main() {
    let seed = 7;

    let mut sweep = Table::new(
        "static split vs federated routing (3 clusters, 24 h, seed 7)",
        &[
            "win-frac",
            "static",
            "queue",
            "coop",
            "switches(static)",
            "switches(coop)",
        ],
    );
    for win_pct in [10u32, 25, 40, 60, 75] {
        let f = f64::from(win_pct) / 100.0;
        let (ws, ss, _) = run(seed, f, RoutePolicy::Static, false);
        let (wq, _, _) = run(seed, f, RoutePolicy::QueueDepth, false);
        let (wc, sc, _) = run(seed, f, RoutePolicy::SwitchCoop, false);
        sweep.row(&[
            format!("{win_pct}%"),
            fmt_secs(ws),
            fmt_secs(wq),
            fmt_secs(wc),
            ss.to_string(),
            sc.to_string(),
        ]);
    }
    println!("{}", sweep.render());

    // The broker's edge depends on its view: a lossy campus network makes
    // reports stale and decisions worse, while the static split (which
    // never looks) is immune.
    let mut net = Table::new(
        "gossip quality vs routing quality (40% windows)",
        &["wire", "policy", "wait", "stale decisions"],
    );
    for (label, lossy) in [("quiet", false), ("lossy", true)] {
        for routing in [RoutePolicy::Static, RoutePolicy::SwitchCoop] {
            let (w, _, stale) = run(seed, 0.4, routing, lossy);
            net.row(&[
                label.to_string(),
                routing.name().to_string(),
                fmt_secs(w),
                stale.to_string(),
            ]);
        }
    }
    println!("{}", net.render());

    let (ws, _, _) = run(seed, 0.4, RoutePolicy::Static, false);
    let (wc, _, _) = run(seed, 0.4, RoutePolicy::SwitchCoop, false);
    println!(
        "federating the campus cuts mean wait from {} to {} at the paper's mix",
        fmt_secs(ws),
        fmt_secs(wc)
    );
}
