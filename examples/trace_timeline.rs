//! The Figure-11 control protocol, read off the observability bus.
//!
//! Runs one short campus morning with the event bus recording, then
//! renders two timelines: the first switch cycle's protocol steps 1-5
//! (detector fetch → report → decision → PXE flag → reboot order) and
//! the boot lifecycle of the first node that switched. This is the
//! programmatic equivalent of
//!
//! ```sh
//! dualboot simulate --trace-out run.jsonl
//! dualboot trace timeline run.jsonl
//! ```
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! ```

use hybrid_cluster::obs::timeline;
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::generator::WorkloadSpec;

fn main() {
    let seed = 2012;
    let cfg = SimConfig::builder()
        .v2()
        .seed(seed)
        .observe(ObsConfig::recording())
        .build();
    let trace = WorkloadSpec::campus_default(seed).generate();
    let sim = Simulation::new(cfg, trace);
    let sink = sim.obs().clone();
    let result = sim.run();
    let records = sink.snapshot();
    println!(
        "one campus day: {} bus records, {} switches, {:.1}% utilisation\n",
        records.len(),
        result.switches,
        100.0 * result.utilisation()
    );

    // The first Figure-11 cycle that lands a switch: take every
    // protocol-step event up to (and including) the first order receipt.
    let first_cycle_end = records
        .iter()
        .position(|r| matches!(r.event, ObsEvent::SwitchJobsSubmitted { .. }))
        .map_or(records.len(), |i| i + 1);
    let steps: Vec<TraceRecord> = records[..first_cycle_end]
        .iter()
        .filter(|r| r.event.protocol_step().is_some())
        .cloned()
        .collect();
    println!("--- first switch cycle (Figure-11 steps 1-5) ---");
    println!("{}", timeline::render(&steps));

    // The first ordered boot, end to end on one node.
    let Some(first_boot) = records
        .iter()
        .find(|r| matches!(r.event, ObsEvent::BootOrdered { .. }))
        .and_then(|r| r.node)
    else {
        return;
    };
    let boots: Vec<TraceRecord> = records
        .iter()
        .filter(|r| r.node == Some(first_boot))
        .take(4)
        .cloned()
        .collect();
    println!("--- node{:02} boot lifecycle ---", first_boot.0);
    println!("{}", timeline::render(&boots));

    // Per-subsystem counter roll-up.
    println!("--- bus counters ---");
    for (sub, n) in sink.counters() {
        if n > 0 {
            println!("{:>16}  {n}", sub.name());
        }
    }
}
