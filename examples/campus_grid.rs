//! Campus-grid scenario: Table I, mix sweeps, and the crossover the paper
//! argues from.
//!
//! §I of the paper motivates the hybrid cluster with the application mix
//! of the Huddersfield campus grid (Table I) and the waste of statically
//! splitting a small cluster per OS. This example prints the catalogue
//! and then sweeps the Windows share of the workload, showing where each
//! strategy wins.
//!
//! ```sh
//! cargo run --release --example campus_grid
//! ```

use hybrid_cluster::cluster::report::{fmt_secs, Table};
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::catalog;
use hybrid_cluster::workload::generator::WorkloadSpec;

fn main() {
    println!("Table I — applications on the Huddersfield campus cluster\n");
    println!("{}", catalog::render_table1());
    let (l, w, b) = catalog::support_counts();
    println!("{l} Linux-only, {w} Windows-only, {b} multi-platform\n");

    // Sweep the Windows share at a fixed offered load of ~0.75.
    let seed = 7;
    let mut table = Table::new(
        "mean wait vs Windows share (offered load 0.75, static split fixed at 8/8)",
        &[
            "win share",
            "dualboot wait",
            "static 8/8 wait",
            "mono-stable turnaround",
            "dualboot turnaround",
            "switches",
        ],
    );
    for win_pct in [10u32, 30, 50, 70, 90] {
        let spec = WorkloadSpec {
            windows_fraction: f64::from(win_pct) / 100.0,
            duration: SimDuration::from_hours(10),
            ..WorkloadSpec::campus_default(seed)
        }
        .with_offered_load(0.75, 64);
        let trace = spec.generate();

        let run = |mode: Mode, split: u32| {
            let mut cfg = SimConfig::builder().v2().seed(seed).build();
            cfg.mode = mode;
            cfg.initial_linux_nodes = split;
            Simulation::new(cfg, trace.clone()).run()
        };
        let dual = run(Mode::DualBoot, 16);
        let stat = run(Mode::StaticSplit, 8);
        let mono = run(Mode::MonoStable, 16);
        table.row(&[
            format!("{win_pct}%"),
            fmt_secs(dual.mean_wait_s()),
            fmt_secs(stat.mean_wait_s()),
            fmt_secs(mono.turnaround.mean()),
            fmt_secs(dual.turnaround.mean()),
            format!("{}", dual.switches),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading: the static split only matches dualboot-oscar when the demand mix\n\
         happens to equal its partition ratio; everywhere else it queues one side\n\
         while the other idles. Mono-stable's turnaround carries the per-job boot\n\
         round trip that bi-stability amortises."
    );
}
