//! Regenerate every configuration artefact the paper's figures show.
//!
//! The middleware is, at bottom, a machine for editing these files; this
//! example prints each one from the typed models so they can be diffed
//! against the paper (Figures 2, 3, 4, 9, 10, 14, 15) by eye.
//!
//! ```sh
//! cargo run --example boot_artifacts
//! ```

use hybrid_cluster::bootconf::diskpart::DiskpartScript;
use hybrid_cluster::bootconf::grub::eridani as grub;
use hybrid_cluster::bootconf::grub4dos::{ControlMode, PxeMenuDir};
use hybrid_cluster::bootconf::idedisk::IdeDisk;
use hybrid_cluster::bootconf::mac::MacAddr;
use hybrid_cluster::prelude::*;
use hybrid_cluster::sched::script::PbsScript;

fn section(title: &str, body: &str) {
    println!("--- {title} ---");
    println!("{body}");
}

fn main() {
    section(
        "Figure 2: node-local /boot/grub/menu.lst (redirects into the FAT partition)",
        &grub::menu_lst().emit(),
    );
    section(
        "Figure 3: controlmenu.lst on the shared FAT partition (default = Linux)",
        &grub::controlmenu(OsKind::Linux).emit(),
    );
    section(
        "controlmenu_to_windows.lst (the pre-staged switch variant)",
        &grub::controlmenu(OsKind::Windows).emit(),
    );
    section(
        "Figure 4: the PBS OS-switch job script",
        &PbsScript::switch_job(OsKind::Windows).emit(),
    );
    section(
        "Figure 9: stock Windows HPC diskpart.txt (wipes the whole disk)",
        &DiskpartScript::original().emit(),
    );
    section(
        "Figure 10: dualboot-oscar v1 diskpart.txt (150 GB for Windows)",
        &DiskpartScript::modified_v1(150_000).emit(),
    );
    section(
        "Figure 15: dualboot-oscar v2 reimage diskpart.txt (partition 1 only)",
        &DiskpartScript::reimage_v2().emit(),
    );
    section(
        "Figure 14: v2 ide.disk with the `skip` label",
        &IdeDisk::eridani_v2().emit(),
    );
    section(
        "reconstructed v1 ide.disk (manual reservation, FAT at (hd0,5))",
        &IdeDisk::eridani_v1().emit(),
    );

    // The v2 PXE menu directory in action.
    let mut dir = PxeMenuDir::new(ControlMode::SingleFlag, OsKind::Linux);
    let mac = MacAddr::for_node(7);
    println!("--- v2 PXE flag demo ---");
    println!(
        "node {} fetches {} -> boots {}",
        mac,
        dir.filename_for(&mac),
        dir.target_for(&mac)
    );
    dir.set_flag(OsKind::Windows);
    println!(
        "flag flicked: node {} now boots {} (menu file below)\n",
        mac,
        dir.target_for(&mac)
    );
    println!("{}", dir.menu_for(&mac).emit());
}
