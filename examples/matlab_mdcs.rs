//! The §IV.B case study: MATLAB MDCS genetic-algorithm optimisation.
//!
//! "Our system was tested on an application requiring optimisation of
//! Genetic Algorithms using the Distributed and Parallel MATLAB ... As
//! load shifted between the two OS environment, the system seamlessly
//! adjusted." This example replays that day and prints the node-count
//! time series: watch the Linux side drain toward Windows when the GA
//! burst lands, and drift back afterwards.
//!
//! ```sh
//! cargo run --release --example matlab_mdcs
//! ```

use hybrid_cluster::cluster::report::{sparkline, Table};
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::mdcs::MdcsCaseStudy;

fn main() {
    let case = MdcsCaseStudy::default_config(2012);
    println!(
        "MDCS case study: {} GA generations x {} evaluations of {} each,\n\
         burst at t={}, over a Linux background of {:.0} jobs/hour\n",
        case.generations,
        case.population_per_generation,
        case.eval_runtime,
        case.burst_start,
        case.background_jobs_per_hour,
    );

    let trace = case.generate();

    // First: what the policies do with the burst. The shipped FCFS rule
    // only reacts to a fully starved queue (it moves one node per stuck
    // episode); the future-work policies the paper sketches in §V adapt
    // far more aggressively.
    let mut policy_table = Table::new(
        "policy comparison on the MDCS day",
        &["policy", "switches", "util", "mean W wait", "makespan"],
    );
    for (label, policy, omniscient) in [
        ("fcfs (paper)", PolicyKind::Fcfs, false),
        // Threshold needs queue depths the Figure-5 wire doesn't carry,
        // so it runs as the omniscient decider (like proportional).
        (
            "threshold(2)",
            PolicyKind::Threshold { queue_threshold: 2 },
            true,
        ),
        (
            "proportional",
            PolicyKind::Proportional { min_per_side: 1 },
            true,
        ),
    ] {
        let mut cfg = SimConfig::builder().v2().seed(2012).build();
        cfg.policy = policy;
        cfg.omniscient = omniscient;
        let r = Simulation::new(cfg, trace.clone()).run();
        policy_table.row(&[
            label.to_string(),
            format!("{}", r.switches),
            format!("{:.1}%", 100.0 * r.utilisation()),
            format!("{:.1}min", r.mean_wait_os_s(OsKind::Windows) / 60.0),
            format!("{}", r.makespan),
        ]);
    }
    println!("{}", policy_table.render());

    let mut cfg = SimConfig::builder().v2().seed(2012).build();
    cfg.policy = PolicyKind::Threshold { queue_threshold: 2 };
    cfg.omniscient = true; // threshold needs both queue depths (see E7)
    cfg.record_series = true;
    cfg.sample_every = SimDuration::from_mins(15);
    let result = Simulation::new(cfg, trace).run();

    let mut table = Table::new(
        "nodes per OS over the day (sampled every 15 min)",
        &["t", "linux", "windows", "booting", "q(L)", "q(W)", "bar"],
    );
    for p in &result.series {
        let bar: String = std::iter::repeat_n('L', p.linux_nodes as usize)
            .chain(std::iter::repeat_n('W', p.windows_nodes as usize))
            .chain(std::iter::repeat_n('.', p.booting_nodes as usize))
            .collect();
        table.row(&[
            format!("{}", p.at),
            format!("{}", p.linux_nodes),
            format!("{}", p.windows_nodes),
            format!("{}", p.booting_nodes),
            format!("{}", p.linux_queued),
            format!("{}", p.windows_queued),
            bar,
        ]);
    }
    println!("{}", table.render());
    let windows_share: Vec<f64> = result.series.iter().map(|p| f64::from(p.windows_nodes)).collect();
    println!("windows nodes over the day: {}", sparkline(&windows_share));
    println!(
        "completed {} Linux + {} Windows jobs, {} OS switches, mean reboot {:.0}s, utilisation {:.1}%",
        result.completed.0,
        result.completed.1,
        result.switches,
        result.switch_latency.mean(),
        100.0 * result.utilisation(),
    );
}
