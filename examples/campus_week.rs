//! A five-day campus week with diurnal load: the cluster breathing.
//!
//! Arrivals follow a day/night cycle (peak mid-afternoon, trough at
//! night) with 35 % Windows demand; the middleware runs the threshold
//! policy. The sparklines show the Windows node share and the queue
//! backlog tracking the daily rhythm — the long-horizon version of the
//! paper's "as load shifted ... the system seamlessly adjusted".
//!
//! ```sh
//! cargo run --release --example campus_week
//! ```

use hybrid_cluster::cluster::report::sparkline;
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::generator::{self, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        duration: SimDuration::from_hours(5 * 24),
        windows_fraction: 0.35,
        diurnal_depth: 0.8,
        mean_runtime: SimDuration::from_mins(20),
        ..WorkloadSpec::campus_default(7)
    }
    .with_offered_load(0.55, 64);
    let trace = spec.generate();
    let stats = generator::stats(&trace);
    println!(
        "campus week: {} jobs over 5 days ({} Linux / {} Windows), diurnal depth 0.8\n",
        stats.jobs, stats.per_os.0, stats.per_os.1
    );

    let mut cfg = SimConfig::builder().v2().seed(7).build();
    cfg.policy = PolicyKind::Threshold { queue_threshold: 2 };
    cfg.omniscient = true;
    cfg.record_series = true;
    cfg.sample_every = SimDuration::from_mins(60);
    cfg.horizon = SimDuration::from_hours(7 * 24);
    let r = Simulation::new(cfg, trace).run();

    // One sparkline row per signal, hour by hour.
    let win_nodes: Vec<f64> = r.series.iter().map(|p| f64::from(p.windows_nodes)).collect();
    let backlog: Vec<f64> = r
        .series
        .iter()
        .map(|p| f64::from(p.linux_queued + p.windows_queued))
        .collect();
    println!("hour marks        : {}", day_ruler(r.series.len()));
    println!("windows node share: {}", sparkline(&win_nodes));
    println!("total queue depth : {}", sparkline(&backlog));
    println!(
        "\ncompleted {} jobs ({} walltime-killed), {} switches, utilisation {:.1}%, mean wait {:.1} min",
        r.total_completed(),
        r.walltime_kills,
        r.switches,
        100.0 * r.utilisation(),
        r.mean_wait_s() / 60.0,
    );
}

/// A ruler string marking midnights (`|`) and noons (`.`), hour per char.
fn day_ruler(hours: usize) -> String {
    (1..=hours)
        .map(|h| match h % 24 {
            0 => '|',
            12 => '.',
            _ => ' ',
        })
        .collect()
}
