//! Quickstart: one campus day on Eridani under dualboot-oscar v2.0.
//!
//! Builds the paper's cluster (16 nodes × 4 cores, all-Linux start),
//! generates a mixed Linux/Windows workload from the Table-I catalogue,
//! runs the full middleware loop, and prints what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_cluster::cluster::report::{result_row, Table, RESULT_HEADERS};
use hybrid_cluster::prelude::*;
use hybrid_cluster::workload::generator::{self, WorkloadSpec};

fn main() {
    let seed = 2012;
    println!("dualboot-oscar reproduction — quickstart\n");

    // An 8-hour campus day: ~12 jobs/hour, 30 % of them Windows.
    let spec = WorkloadSpec::campus_default(seed);
    let trace = spec.generate();
    let stats = generator::stats(&trace);
    println!(
        "workload: {} jobs ({} Linux, {} Windows), {:.1} core-hours of demand",
        stats.jobs,
        stats.per_os.0,
        stats.per_os.1,
        stats.core_seconds as f64 / 3600.0
    );

    // The paper's system, and the baselines it argues against.
    let mut table = Table::new("one campus day on Eridani (16 nodes x 4 cores)", &RESULT_HEADERS);
    for (label, mode, split) in [
        ("dualboot-oscar v2 (FCFS)", Mode::DualBoot, 16),
        ("static split 8/8", Mode::StaticSplit, 8),
        ("mono-stable (boot per W job)", Mode::MonoStable, 16),
        ("oracle (no OS constraint)", Mode::Oracle, 16),
    ] {
        let mut cfg = SimConfig::builder().v2().seed(seed).build();
        cfg.mode = mode;
        cfg.initial_linux_nodes = split;
        let result = Simulation::new(cfg, trace.clone()).run();
        table.row(&result_row(label, &result));
    }
    println!("\n{}", table.render());

    println!(
        "reading: dualboot-oscar keeps utilisation near the oracle by rebooting idle\n\
         nodes into the OS with queued demand (each switch costs one <=5-minute reboot),\n\
         while the static split strands capacity and mono-stable pays a boot round\n\
         trip on every Windows job."
    );
}
